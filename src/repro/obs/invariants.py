"""Online protocol-invariant checking over the trace stream.

An :class:`InvariantChecker` subscribes to a :class:`repro.sim.Tracer`
(via :meth:`attach`) and verifies, record by record as the simulation
runs, that the OC-Bcast protocol keeps its promises:

I1 ``lost-write`` (lossless runs only)
    No protocol MPB write may be dropped or corrupted: every
    ``flag_write`` / ``slot_write`` / ``put`` / ``get`` record must carry
    ``landed="ok"``.  Disabled (``lossless=False``) when a fault injector
    is armed on purpose -- then the *negative* test uses exactly this
    invariant to prove a seeded dropped flag is caught.

I2 ``flag-fifo``
    Per (writer, owner, flag line): sequence numbers are non-decreasing.
    Flags are monotonic by design (the double-buffering floor relies on
    it), and MPB writes of one core to one line are FIFO on the mesh, so
    any regression means a protocol or engine reordering bug.  Keyed per
    *writer* because FT direct fan-out legitimately lets a parent write
    seq s+1 to a child while a slower sibling still relays seq s.

I3 ``notify-before-fetch``
    A node may fetch chunk seq from its parent (``oc.fetch``) only after
    a notify-flag write with that seq (or later) *landed* in its MPB --
    "a child never gets a chunk before its notify flag".

I4 ``no-invented-notify``
    A core may only send a notify seq it is entitled to: it staged that
    chunk itself (root), a notify for it landed at its own MPB first, or
    -- service mode -- it decided the commit verdict for that seq
    (``oc.svc.commit``), which the root announces without staging a
    chunk.  Catches relays/fan-outs running ahead of the data.

I5 ``no-reuse-before-ack``
    Re-staging (root, ``oc.chunk_staged``) or re-filling (node,
    ``oc.fetch``) an MPB buffer slot whose ``floor`` is positive requires
    every child doneFlag at that core to have reached the floor --
    children declared dead (``oc.ft.child_dead``) exempted.  This is the
    double-buffering handshake of paper Section 4.2.  A new *service
    attempt* (``svc.attempt``) resets the attempting rank's done floors:
    the membership round fences the previous attempt (its readers have
    timed out or quiesced before the view installs) and the survivor
    tree may be rebuilt or re-rooted, so done acks addressed to the old
    tree's child slots no longer constrain buffer reuse.

I6 ``uniform-agreement``
    Per service message (``svc.outcome`` records, keyed by ``msg``): all
    *decisive* outcomes must agree -- ``ok`` and ``aborted`` may never
    coexist for one message, and every ``ok`` must carry the same
    payload fingerprint (``crc``).  ``evicted`` and ``self_evicted``
    outcomes are non-decisive: those ranks left the agreement set.
    This is the completion-protocol guarantee for a source that crashes
    mid-message -- no live core delivers a message that others discard.

I7 ``byzantine-agreement``
    Per RBC-delivered message (``rbc.outcome`` records, keyed by
    ``msg``), over *honest* ranks only -- ranks that actually fired an
    adversary fault (``fault.injected`` with an ``equivocate`` /
    ``forge_flag_value`` / ``lie_in_quorum`` kind) are excluded, their
    claims being worthless by definition.  **Agreement**: no two honest
    ``ok`` outcomes may carry different payload fingerprints, whatever
    the source did.  **Validity**: when the source rank is honest, every
    honest ``ok`` fingerprint must equal the source's own input
    fingerprint (``input_crc``).  This is the Bracha echo/ready promise
    the Byzantine broadcast mode makes on top of I6.

I8 ``no-false-eviction``
    A member that never missed sending a heartbeat is never suspected.
    Suspicion (``member.suspect``, detail ``member``/``round``) of rank
    m at round r is *justified* only if m crashed by fault plan
    (``fault.injected`` with a crash kind at ``core{m}``), m itself gave
    up reporting round r (``svc.report_failed``), or m's traced
    ``member.hb`` stream shows a gap or stops before round r -- it
    genuinely went silent.  Anything else is a false eviction: the
    adaptive detector's suspicion floor is sized to cover every *legal*
    response lag (paced retries, flap down phases, the lagging-orphan
    grace), so suspecting a member whose heartbeat send for round r is
    already on the trace means the timeout was wrong, not the member.
    Note the fixed-deadline legacy config makes no such promise -- churn
    campaigns attach this checker to the adaptive leg only.

Violations carry the offending record plus a window of the most recent
records for context.  By default they are collected and raised together
by :meth:`check` (call it after the run); ``strict=True`` raises at the
emitting site instead, which puts the failure at the exact virtual time
it occurred but aborts the simulation mid-flight.

Scope: rank/core identity is assumed to coincide (true for the default
and prefix communicators this repo uses); attach one checker per chip.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..sim.trace import TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..scc.chip import SccChip

_WRITE_KINDS = frozenset({"flag_write", "slot_write", "put", "get"})

#: Fault kinds that mark the firing core as Byzantine for I7.
_ADVERSARY_FAULTS = frozenset(
    {"equivocate", "forge_flag_value", "lie_in_quorum"}
)

#: Fault kinds whose injection record means the victim core is dead --
#: suspecting it afterwards is justified however regular its heartbeats
#: were (I8).
_CRASH_FAULTS = frozenset({"core_crash", "repeated_crash"})


class InvariantViolation(AssertionError):
    """A protocol invariant failed; carries the evidence."""

    def __init__(
        self,
        invariant: str,
        message: str,
        record: TraceRecord,
        window: list[TraceRecord],
    ) -> None:
        self.invariant = invariant
        self.record = record
        self.window = list(window)
        tail = "\n".join(f"    {r}" for r in self.window)
        super().__init__(
            f"[{invariant}] {message}\n  offending record:\n    {record}\n"
            f"  last {len(self.window)} records:\n{tail}"
        )


class InvariantChecker:
    """Streaming conformance oracle for OC-Bcast traces."""

    def __init__(
        self, *, lossless: bool = True, strict: bool = False, window: int = 16
    ) -> None:
        self.lossless = lossless
        self.strict = strict
        self.violations: list[InvariantViolation] = []
        self.records_seen = 0
        self._window: deque[TraceRecord] = deque(maxlen=window)
        # I2: (source, owner, flag-name, offset) -> last seq written.
        self._last_seq: dict[tuple, int] = {}
        # I3/I4 credits: core id -> highest notify seq landed in its MPB /
        # highest chunk seq it staged itself.
        self._notified: dict[int, int] = {}
        self._staged: dict[int, int] = {}
        # I5: (owner core, done-flag name) -> (last landed seq, writer).
        self._done: dict[tuple[int, str], tuple[int, int]] = {}
        # FT: owner core -> set of child cores it declared dead.
        self._dead: dict[int, set[int]] = {}
        # I6: msg id -> (decisive status, crc-or-None, first rank).
        self._outcomes: dict[int, tuple[str, int | None, int | None]] = {}
        # I7: ranks that fired an adversary fault; first honest ok per
        # msg; the honest source's input fingerprint per msg.
        self._compromised: set[int] = set()
        self._rbc_ok: dict[int, tuple[int, int]] = {}
        self._rbc_input: dict[int, tuple[int, int]] = {}
        # I8: rank -> (first round sent, last round sent, ever skipped a
        # round); cores crashed by fault plan; rank -> rounds whose
        # heartbeat report the member itself gave up on.
        self._hb_sent: dict[int, tuple[int, int, bool]] = {}
        self._crashed: set[int] = set()
        self._hb_failed: dict[int, set[int]] = {}

    # -- wiring ------------------------------------------------------------

    def attach(self, chip: "SccChip") -> "InvariantChecker":
        """Subscribe to the chip's tracer (which must be enabled)."""
        if not chip.tracer.enabled:
            raise ValueError(
                "InvariantChecker needs an enabled Tracer "
                "(SccChip(tracer=Tracer(enabled=True)))"
            )
        chip.tracer.add_listener(self.feed)
        return self

    def check(self) -> None:
        """Raise the first collected violation (call after the run)."""
        if self.violations:
            raise self.violations[0]

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- streaming ---------------------------------------------------------

    def feed(self, rec: TraceRecord) -> None:
        self.records_seen += 1
        kind = rec.kind
        if kind == "flag_write":
            self._on_flag_write(rec)
        elif kind == "oc.fetch":
            self._on_fetch(rec)
        elif kind == "oc.chunk_staged":
            self._on_staged(rec)
        elif kind == "oc.svc.commit":
            # The deciding root earns notify credit for the commit seq.
            owner = _core_of(rec.source)
            seq = rec.detail.get("seq")
            if (
                owner is not None
                and seq is not None
                and seq > self._staged.get(owner, 0)
            ):
                self._staged[owner] = seq
        elif kind == "oc.ft.child_dead":
            owner = _core_of(rec.source)
            if owner is not None:
                self._dead.setdefault(owner, set()).add(rec.detail["child"])
        elif kind == "svc.attempt":
            owner = _core_of(rec.source)
            if owner is not None:
                # New attempt => membership fence => this rank's MPB
                # done slots are logically fresh (tree may be re-rooted).
                for key in [k for k in self._done if k[0] == owner]:
                    del self._done[key]
        elif kind == "svc.outcome":
            self._on_outcome(rec)
        elif kind == "fault.injected":
            fault = rec.detail.get("fault")
            site = rec.detail.get("site", "")
            core = _core_of(site.split(" ", 1)[0])
            if core is not None:
                if fault in _ADVERSARY_FAULTS:
                    self._compromised.add(core)
                elif fault in _CRASH_FAULTS:
                    self._crashed.add(core)
        elif kind == "member.hb":
            self._on_heartbeat(rec)
        elif kind == "svc.report_failed":
            rank = _core_of(rec.source)
            rnd = rec.detail.get("round")
            if rank is not None and rnd is not None:
                self._hb_failed.setdefault(rank, set()).add(rnd)
        elif kind == "member.suspect":
            self._on_suspect(rec)
        elif kind == "rbc.outcome":
            self._on_rbc_outcome(rec)
        elif self.lossless and kind in _WRITE_KINDS:
            if rec.detail.get("landed", "ok") != "ok":
                self._fail(
                    "lost-write",
                    f"{kind} from {rec.source} was {rec.detail['landed']} "
                    f"in a run declared lossless",
                    rec,
                )
        self._window.append(rec)

    # -- per-kind handlers -------------------------------------------------

    def _on_flag_write(self, rec: TraceRecord) -> None:
        d = rec.detail
        landed = d.get("landed", "ok")
        if self.lossless and landed != "ok":
            self._fail(
                "lost-write",
                f"flag write {d.get('flag')!r} from {rec.source} to "
                f"core{d.get('owner')} was {landed} in a run declared lossless",
                rec,
            )
        source = _core_of(rec.source)
        owner = d.get("owner")
        flag = d.get("flag", "")
        seq = d.get("seq")
        if source is None or owner is None or seq is None:
            return
        key = (source, owner, flag, d.get("off"))
        last = self._last_seq.get(key)
        if last is not None and seq < last:
            self._fail(
                "flag-fifo",
                f"core{source} wrote seq {seq} to {flag!r}@core{owner} "
                f"after having written seq {last} (per-writer flag "
                f"sequences must be non-decreasing)",
                rec,
            )
        self._last_seq[key] = max(seq, last if last is not None else seq)
        if flag == "oc.notify":
            # I4: the writer must itself hold the chunk it announces.
            credit = max(
                self._staged.get(source, 0), self._notified.get(source, 0)
            )
            if seq > credit:
                self._fail(
                    "no-invented-notify",
                    f"core{source} notified core{owner} of chunk seq {seq} "
                    f"but has itself only staged/been notified up to "
                    f"{credit}",
                    rec,
                )
            if landed == "ok" and seq > self._notified.get(owner, 0):
                self._notified[owner] = seq
        elif flag.startswith("oc.done") and landed == "ok":
            prev = self._done.get((owner, flag))
            if prev is None or seq > prev[0]:
                self._done[(owner, flag)] = (seq, source)

    def _on_fetch(self, rec: TraceRecord) -> None:
        d = rec.detail
        node = _core_of(rec.source)
        seq = d.get("seq")
        if node is None or seq is None:
            return
        if seq > self._notified.get(node, 0):
            self._fail(
                "notify-before-fetch",
                f"core{node} fetches chunk seq {seq} from "
                f"core{d.get('parent')} but the highest notify landed in "
                f"its MPB is {self._notified.get(node, 0)}",
                rec,
            )
        self._check_floor(node, d, rec)

    def _on_outcome(self, rec: TraceRecord) -> None:
        """I6: all decisive outcomes of one service message agree."""
        d = rec.detail
        status = d.get("status")
        if status not in ("ok", "aborted"):
            return  # evicted / self_evicted ranks left the agreement set
        msg = d.get("msg")
        rank = _core_of(rec.source)
        crc = d.get("crc")
        prev = self._outcomes.get(msg)
        if prev is None:
            self._outcomes[msg] = (status, crc, rank)
            return
        p_status, p_crc, p_rank = prev
        if status != p_status:
            self._fail(
                "uniform-agreement",
                f"message {msg}: rank{rank} decided {status!r} but "
                f"rank{p_rank} decided {p_status!r} -- live members must "
                f"all deliver or all abort",
                rec,
            )
        elif (
            status == "ok"
            and crc is not None
            and p_crc is not None
            and crc != p_crc
        ):
            self._fail(
                "uniform-agreement",
                f"message {msg}: rank{rank} delivered payload crc "
                f"{crc:#010x} but rank{p_rank} delivered {p_crc:#010x} -- "
                f"delivered payloads must be identical",
                rec,
            )

    def _on_rbc_outcome(self, rec: TraceRecord) -> None:
        """I7: honest RBC deliveries agree, and match an honest source."""
        d = rec.detail
        rank = _core_of(rec.source)
        if rank is None or rank in self._compromised:
            return
        msg = d.get("msg")
        input_crc = d.get("input_crc")
        if input_crc is not None:
            self._rbc_input[msg] = (rank, input_crc)
            ok = self._rbc_ok.get(msg)
            if ok is not None and ok[0] != input_crc:
                self._fail(
                    "byzantine-agreement",
                    f"message {msg}: honest rank{ok[1]} delivered payload "
                    f"crc {ok[0]:#010x} but the honest source rank{rank} "
                    f"broadcast {input_crc:#010x} -- validity requires "
                    f"the source's value",
                    rec,
                )
        if d.get("status") != "ok":
            return
        crc = d.get("crc")
        if crc is None:
            return
        prev = self._rbc_ok.get(msg)
        if prev is None:
            self._rbc_ok[msg] = (crc, rank)
        elif crc != prev[0]:
            self._fail(
                "byzantine-agreement",
                f"message {msg}: honest rank{rank} delivered payload crc "
                f"{crc:#010x} but honest rank{prev[1]} delivered "
                f"{prev[0]:#010x} -- an echo quorum admits one digest",
                rec,
            )
        src = self._rbc_input.get(msg)
        if src is not None and crc != src[1]:
            self._fail(
                "byzantine-agreement",
                f"message {msg}: honest rank{rank} delivered payload crc "
                f"{crc:#010x} but the honest source rank{src[0]} "
                f"broadcast {src[1]:#010x} -- validity requires the "
                f"source's value",
                rec,
            )

    def _on_heartbeat(self, rec: TraceRecord) -> None:
        """I8 bookkeeping: the heartbeat *send* stream of each member."""
        rank = _core_of(rec.source)
        rnd = rec.detail.get("round")
        if rank is None or rnd is None:
            return
        prev = self._hb_sent.get(rank)
        if prev is None:
            self._hb_sent[rank] = (rnd, rnd, False)
            return
        first, last, missed = prev
        # A jump past last+1 means rounds went by without a send (e.g. a
        # lagging orphan fast-forwarding); suspicion in the gap is fair.
        # Re-sends of the same round (re-reporting to an election winner)
        # and the next round are both contiguous.
        if rnd > last + 1:
            missed = True
        self._hb_sent[rank] = (first, max(last, rnd), missed)

    def _on_suspect(self, rec: TraceRecord) -> None:
        """I8: suspicion must be earned by actual silence."""
        d = rec.detail
        m = d.get("member")
        rnd = d.get("round")
        if m is None or rnd is None:
            return
        if m in self._crashed:
            return  # dead by fault plan -- suspicion is the point
        if rnd in self._hb_failed.get(m, ()):
            return  # the member itself gave up reporting this round
        sent = self._hb_sent.get(m)
        if sent is None:
            return  # never heartbeated at all -- silence is real
        first, last, missed = sent
        if missed or last < rnd or first > 1:
            return  # a round went unsent (or history starts late)
        coord = _core_of(rec.source)
        self._fail(
            "no-false-eviction",
            f"core{coord} suspects rank{m} at round {rnd} but rank{m} "
            f"sent every heartbeat round {first}..{last} (>= {rnd}) and "
            f"never crashed -- the suspicion timeout undercut a legal "
            f"response lag",
            rec,
        )

    def _on_staged(self, rec: TraceRecord) -> None:
        d = rec.detail
        root = _core_of(rec.source)
        seq = d.get("seq")
        if root is None or seq is None:
            return
        if seq > self._staged.get(root, 0):
            self._staged[root] = seq
        self._check_floor(root, d, rec)

    def _check_floor(self, owner: int, d: dict, rec: TraceRecord) -> None:
        """I5: buffer-slot reuse requires every live child's doneFlag at
        ``owner`` to have reached ``floor``."""
        floor = d.get("floor")
        if floor is None or floor < 1:
            return  # first fill of this slot (or pre-floor records)
        dead = self._dead.get(owner, ())
        for (flag_owner, flag), (seq, writer) in self._done.items():
            if flag_owner != owner or writer in dead:
                continue
            if seq < floor:
                self._fail(
                    "no-reuse-before-ack",
                    f"core{owner} reuses buffer slot {d.get('buf')} for "
                    f"chunk seq {d.get('seq')} but live child core{writer} "
                    f"has only acked {flag!r} up to seq {seq} "
                    f"(floor {floor})",
                    rec,
                )

    # -- plumbing ----------------------------------------------------------

    def _fail(self, invariant: str, message: str, rec: TraceRecord) -> None:
        violation = InvariantViolation(
            invariant, message, rec, list(self._window)
        )
        self.violations.append(violation)
        if self.strict:
            raise violation


def _core_of(source: str) -> int | None:
    """Core id of a ``coreN`` / ``rankN`` trace source (rank == core id
    for the communicators used here)."""
    if source.startswith("core"):
        tail = source[4:]
    elif source.startswith("rank"):
        tail = source[4:]
    else:
        return None
    return int(tail) if tail.isdigit() else None
