"""Render TraceRecords as Chrome trace-event JSON.

The output loads in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: one track (``tid``) per core, duration slices for
span-shaped record kinds and instant markers for everything else.

Mapping rules
-------------
- ``sourceN`` where source is ``rank`` or ``core`` maps to ``tid = N``;
  ``rank`` and ``core`` tracks with the same number merge (rank == core
  id for the default communicator), labelled by the first source seen.
  Other sources (``mesh``, ``fault`` ...) get stable tids past the core
  range.
- Kind ``x.y.begin`` opens a duration slice named ``x.y``; ``x.y.end``
  closes it (``ph`` = ``B``/``E``).  Spans must nest per track, which
  the protocol's emission sites guarantee (a wait span sits inside its
  chunk span).
- Every other kind is an instant event (``ph`` = ``i``, thread scope).
- Timestamps are the simulator's virtual microseconds, passed through
  unchanged (the trace-event ``ts`` unit is also microseconds).

:func:`validate_chrome_trace` is the well-formedness oracle the tests
use: required fields present, per-track begin/end properly nested and
monotonic.
"""

from __future__ import annotations

import json
import re
from typing import Iterable

from ..sim.trace import TraceRecord

_TRACK_RE = re.compile(r"^(?:rank|core)(\d+)$")
#: tid offset for non-core sources, far above any plausible core count.
_AUX_TID_BASE = 1_000_000


def _tid_of(source: str, aux: dict[str, int]) -> int:
    m = _TRACK_RE.match(source)
    if m:
        return int(m.group(1))
    tid = aux.get(source)
    if tid is None:
        tid = aux[source] = _AUX_TID_BASE + len(aux)
    return tid


def to_chrome_trace(
    records: Iterable[TraceRecord], *, pid: int = 1, process_name: str = "scc-sim"
) -> dict:
    """Convert records to a trace-event JSON document (as a dict)."""
    events: list[dict] = []
    aux_tids: dict[str, int] = {}
    track_names: dict[int, str] = {}
    for rec in records:
        tid = _tid_of(rec.source, aux_tids)
        track_names.setdefault(tid, rec.source)
        kind = rec.kind
        if kind.endswith(".begin"):
            ph, name = "B", kind[: -len(".begin")]
        elif kind.endswith(".end"):
            ph, name = "E", kind[: -len(".end")]
        else:
            ph, name = "i", kind
        ev = {
            "name": name,
            "ph": ph,
            "ts": rec.time,
            "pid": pid,
            "tid": tid,
        }
        if ph == "i":
            ev["s"] = "t"  # thread-scoped instant
        if rec.detail and ph != "E":  # E events take no args in the spec
            ev["args"] = {k: _jsonable(v) for k, v in rec.detail.items()}
        events.append(ev)

    meta: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid in sorted(track_names):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track_names[tid]},
            }
        )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def _jsonable(v: object) -> object:
    if isinstance(v, (bool, int, float, str)) or v is None:
        return v
    return repr(v)


def write_chrome_trace(
    records: Iterable[TraceRecord], path: str, *, pid: int = 1
) -> int:
    """Write the trace-event JSON to ``path``; returns the event count."""
    doc = to_chrome_trace(records, pid=pid)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return len(doc["traceEvents"])


def validate_chrome_trace(doc: dict) -> None:
    """Raise ``ValueError`` on any structural defect of a trace document.

    Checks: top-level shape, required fields per event, known phase
    types, and per-(pid, tid) duration-slice discipline -- every ``E``
    matches the name of the innermost open ``B``, timestamps inside a
    track's stack never go backwards, and no slice is left open.
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    open_slices: dict[tuple, list[tuple[str, float]]] = {}
    for i, ev in enumerate(events):
        for field in ("name", "ph", "pid", "tid"):
            if field not in ev:
                raise ValueError(f"event {i} missing {field!r}: {ev}")
        ph = ev["ph"]
        if ph not in ("B", "E", "i", "I", "M", "X", "C"):
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        if ph == "M":
            continue
        if "ts" not in ev:
            raise ValueError(f"event {i} missing 'ts': {ev}")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event {i} has non-numeric ts {ts!r}")
        key = (ev["pid"], ev["tid"])
        stack = open_slices.setdefault(key, [])
        if ph == "B":
            if stack and ts < stack[-1][1]:
                raise ValueError(
                    f"event {i}: begin at ts={ts} before enclosing "
                    f"slice {stack[-1]}"
                )
            stack.append((ev["name"], ts))
        elif ph == "E":
            if not stack:
                raise ValueError(f"event {i}: end with no open slice on {key}")
            name, began = stack.pop()
            if name != ev["name"]:
                raise ValueError(
                    f"event {i}: end {ev['name']!r} does not match open "
                    f"slice {name!r}"
                )
            if ts < began:
                raise ValueError(
                    f"event {i}: slice {name!r} ends at ts={ts} before its "
                    f"begin ts={began}"
                )
    for key, stack in open_slices.items():
        if stack:
            raise ValueError(f"track {key} has unclosed slices: {stack}")
