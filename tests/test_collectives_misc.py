"""Tests for barrier, reduce, gather, scatter, allgather."""

import numpy as np
import pytest

from repro.collectives import (
    BarrierState,
    ReduceOp,
    binomial_gather,
    binomial_reduce,
    binomial_scatter,
    dissemination_barrier,
    ring_allgather,
)
from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd


def make_world(P):
    chip = SccChip(SccConfig())
    comm = Comm(chip, ranks=list(range(P)))
    return chip, comm


class TestBarrier:
    @pytest.mark.parametrize("P", [2, 3, 8, 48])
    def test_no_rank_escapes_early(self, P):
        chip, comm = make_world(P)
        state = BarrierState(comm)
        last_arrival = [0.0]
        exits = {}

        def program(core):
            cc = comm.attach(core)
            yield core.compute(float(cc.rank) * 3.0)  # staggered arrivals
            last_arrival[0] = max(last_arrival[0], chip.now)
            yield from dissemination_barrier(cc, state)
            exits[cc.rank] = chip.now

        run_spmd(chip, program, core_ids=list(range(P)))
        assert min(exits.values()) >= last_arrival[0]

    def test_repeated_barriers(self):
        chip, comm = make_world(8)
        state = BarrierState(comm)
        epochs = []

        def program(core):
            cc = comm.attach(core)
            for i in range(3):
                yield core.compute(float((cc.rank * 7 + i) % 5))
                yield from dissemination_barrier(cc, state)
                if cc.rank == 0:
                    epochs.append(chip.now)

        run_spmd(chip, program, core_ids=list(range(8)))
        assert len(epochs) == 3
        assert epochs == sorted(epochs)

    def test_single_rank_barrier_is_noop(self):
        chip, comm = make_world(1)
        state = BarrierState(comm)

        def program(core):
            cc = comm.attach(core)
            yield from dissemination_barrier(cc, state)

        res = run_spmd(chip, program, core_ids=[0])
        assert res.makespan == 0.0


class TestReduce:
    @pytest.mark.parametrize("P", [2, 3, 8, 16])
    def test_sum_reduce(self, P):
        chip, comm = make_world(P)
        op = ReduceOp.sum("<i8")
        n = 16 * 8
        result = {}

        def program(core):
            cc = comm.attach(core)
            send = cc.alloc(n)
            send.write(np.full(16, cc.rank + 1, dtype="<i8").tobytes())
            recv = cc.alloc(n)
            yield from binomial_reduce(cc, 0, send, recv, n, op)
            if cc.rank == 0:
                result["sum"] = np.frombuffer(recv.read(), dtype="<i8")

        run_spmd(chip, program, core_ids=list(range(P)))
        expected = sum(range(1, P + 1))
        assert (result["sum"] == expected).all()

    def test_max_reduce_nonzero_root(self):
        P, root = 7, 3
        chip, comm = make_world(P)
        op = ReduceOp.max("<i4")
        n = 8 * 4
        result = {}

        def program(core):
            cc = comm.attach(core)
            send = cc.alloc(n)
            vals = np.arange(8, dtype="<i4") * (cc.rank + 1)
            send.write(vals.tobytes())
            recv = cc.alloc(n)
            yield from binomial_reduce(cc, root, send, recv, n, op)
            if cc.rank == root:
                result["max"] = np.frombuffer(recv.read(), dtype="<i4")

        run_spmd(chip, program, core_ids=list(range(P)))
        assert (result["max"] == np.arange(8, dtype="<i4") * P).all()

    def test_sendbuf_not_clobbered(self):
        chip, comm = make_world(4)
        op = ReduceOp.sum("<i8")
        kept = {}

        def program(core):
            cc = comm.attach(core)
            send = cc.alloc(32)
            send.write(np.full(4, cc.rank, dtype="<i8").tobytes())
            recv = cc.alloc(32)
            yield from binomial_reduce(cc, 0, send, recv, 32, op)
            kept[cc.rank] = np.frombuffer(send.read(), dtype="<i8")

        run_spmd(chip, program, core_ids=list(range(4)))
        for r, vals in kept.items():
            assert (vals == r).all()

    def test_misaligned_length_rejected(self):
        chip, comm = make_world(2)
        op = ReduceOp.sum("<i8")

        def program(core):
            cc = comm.attach(core)
            send = cc.alloc(33)
            recv = cc.alloc(33)
            yield from binomial_reduce(cc, 0, send, recv, 33, op)

        with pytest.raises(Exception):
            run_spmd(chip, program, core_ids=[0, 1])

    def test_reduce_op_combine_validates_shapes(self):
        op = ReduceOp.sum("<i8")
        with pytest.raises(ValueError):
            op.combine(bytes(16), bytes(8))

    def test_reduce_op_factories(self):
        a = np.array([1, 5], dtype="<i8").tobytes()
        b = np.array([4, 2], dtype="<i8").tobytes()
        assert np.frombuffer(ReduceOp.sum().combine(a, b), "<i8").tolist() == [5, 7]
        assert np.frombuffer(ReduceOp.prod().combine(a, b), "<i8").tolist() == [4, 10]
        assert np.frombuffer(ReduceOp.max().combine(a, b), "<i8").tolist() == [4, 5]
        assert np.frombuffer(ReduceOp.min().combine(a, b), "<i8").tolist() == [1, 2]


class TestGather:
    @pytest.mark.parametrize("P,root", [(4, 0), (7, 2), (16, 15)])
    def test_gather_blocks_by_relative_rank(self, P, root):
        chip, comm = make_world(P)
        block = 64
        result = {}

        def program(core):
            cc = comm.attach(core)
            src = cc.alloc(block)
            src.write(bytes([cc.rank + 1]) * block)
            dst = cc.alloc(block * P)
            yield from binomial_gather(cc, root, src, dst, block)
            if cc.rank == root:
                result["img"] = dst.read()

        run_spmd(chip, program, core_ids=list(range(P)))
        img = result["img"]
        for rel in range(P):
            rank = (root + rel) % P
            assert img[rel * block : (rel + 1) * block] == bytes([rank + 1]) * block


class TestScatter:
    @pytest.mark.parametrize("P,root", [(4, 0), (8, 3)])
    def test_each_rank_gets_its_slice(self, P, root):
        chip, comm = make_world(P)
        nbytes = P * 50
        payload = bytes(i % 256 for i in range(nbytes))
        result = {}

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            if cc.rank == root:
                buf.write(payload)
            off, ln = yield from binomial_scatter(cc, root, buf, nbytes)
            result[cc.rank] = buf.read()[off : off + ln]

        run_spmd(chip, program, core_ids=list(range(P)))
        s = -(-nbytes // P)
        for rank, data in result.items():
            rel = (rank - root) % P
            assert data == payload[rel * s : rel * s + len(data)]


class TestAllgather:
    @pytest.mark.parametrize("P", [2, 3, 8])
    def test_everyone_gets_all_blocks(self, P):
        chip, comm = make_world(P)
        block = 96
        result = {}

        def program(core):
            cc = comm.attach(core)
            src = cc.alloc(block)
            src.write(bytes([cc.rank * 2 + 1]) * block)
            dst = cc.alloc(block * P)
            yield from ring_allgather(cc, src, dst, block)
            result[cc.rank] = dst.read()

        run_spmd(chip, program, core_ids=list(range(P)))
        expected = b"".join(bytes([r * 2 + 1]) * block for r in range(P))
        assert all(result[r] == expected for r in range(P))

    def test_single_rank(self):
        chip, comm = make_world(1)

        def program(core):
            cc = comm.attach(core)
            src = cc.alloc(32)
            src.write(b"q" * 32)
            dst = cc.alloc(32)
            yield from ring_allgather(cc, src, dst, 32)
            return dst.read()

        res = run_spmd(chip, program, core_ids=[0])
        assert res.values[0] == b"q" * 32


class TestAlltoall:
    from repro.collectives import pairwise_alltoall  # noqa: F401 - import check

    def _run(self, P, block):
        from repro.collectives import pairwise_alltoall

        chip, comm = make_world(P)
        out = {}

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(block * P)
            src.write(
                b"".join(bytes([(cc.rank * 7 + j * 3) % 256]) * block for j in range(P))
            )
            dst = cc.alloc(block * P)
            yield from pairwise_alltoall(cc, src, dst, block)
            out[cc.rank] = dst.read()

        run_spmd(chip, prog, core_ids=list(range(P)))
        return out

    @pytest.mark.parametrize("P", [2, 3, 4, 5, 8, 16])
    def test_transpose_property(self, P):
        block = 40
        out = self._run(P, block)
        for r in range(P):
            for i in range(P):
                expected = bytes([(i * 7 + r * 3) % 256]) * block
                assert out[r][i * block : (i + 1) * block] == expected

    def test_full_chip(self):
        out = self._run(48, 32)
        # Spot-check the transpose at a few positions.
        for r, i in ((0, 47), (13, 26), (47, 0)):
            expected = bytes([(i * 7 + r * 3) % 256]) * 32
            assert out[r][i * 32 : (i + 1) * 32] == expected

    def test_single_rank(self):
        out = self._run(1, 64)
        assert out[0] == bytes([0]) * 64

    def test_zero_block_noop(self):
        from repro.collectives import pairwise_alltoall

        chip, comm = make_world(4)

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(0)
            dst = cc.alloc(0)
            yield from pairwise_alltoall(cc, src, dst, 0)

        assert run_spmd(chip, prog, core_ids=list(range(4))).makespan == 0.0

    def test_undersized_buffers_rejected(self):
        from repro.collectives import pairwise_alltoall

        chip, comm = make_world(4)

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(10)
            dst = cc.alloc(10)
            yield from pairwise_alltoall(cc, src, dst, 16)

        with pytest.raises(Exception):
            run_spmd(chip, prog, core_ids=[0])
