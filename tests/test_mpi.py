"""Tests for the MPI-flavoured facade."""

import numpy as np
import pytest

from repro.mpi import BACKENDS, Mpi, SAG_THRESHOLD_LINES
from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd
from repro.collectives import ReduceOp


def make_mpi(backend, P=12):
    chip = SccChip(SccConfig())
    comm = Comm(chip, ranks=list(range(P)))
    return chip, Mpi(comm, backend=backend)


@pytest.mark.parametrize("backend", BACKENDS)
class TestCollectives:
    def test_bcast_small(self, backend):
        chip, mpi = make_mpi(backend)
        payload = bytes(range(200))
        results = {}

        def program(core):
            rank = mpi.attach(core)
            buf = rank.alloc(len(payload))
            if rank.rank == 0:
                buf.write(payload)
            yield from rank.bcast(buf, len(payload))
            results[rank.rank] = buf.read()

        run_spmd(chip, program, core_ids=list(range(mpi.size)))
        assert all(v == payload for v in results.values())

    def test_bcast_large_crosses_sag_threshold(self, backend):
        chip, mpi = make_mpi(backend)
        nbytes = (SAG_THRESHOLD_LINES + 64) * 32
        payload = bytes(i % 251 for i in range(nbytes))
        results = {}

        def program(core):
            rank = mpi.attach(core)
            buf = rank.alloc(nbytes)
            if rank.rank == 0:
                buf.write(payload)
            yield from rank.bcast(buf, nbytes)
            results[rank.rank] = buf.read()

        run_spmd(chip, program, core_ids=list(range(mpi.size)))
        assert all(v == payload for v in results.values())

    def test_reduce(self, backend):
        chip, mpi = make_mpi(backend)
        op = ReduceOp.sum()
        n = 64
        out = {}

        def program(core):
            rank = mpi.attach(core)
            send = rank.alloc(n)
            send.write(np.full(n // 8, rank.rank + 1, dtype="<i8").tobytes())
            recv = rank.alloc(n)
            yield from rank.reduce(send, recv, n, op)
            if rank.rank == 0:
                out["v"] = np.frombuffer(recv.read(), "<i8")

        run_spmd(chip, program, core_ids=list(range(mpi.size)))
        assert (out["v"] == sum(range(1, mpi.size + 1))).all()

    def test_allreduce(self, backend):
        chip, mpi = make_mpi(backend, P=8)
        op = ReduceOp.max()
        n = 32
        results = {}

        def program(core):
            rank = mpi.attach(core)
            send = rank.alloc(n)
            send.write(np.full(n // 8, rank.rank, dtype="<i8").tobytes())
            recv = rank.alloc(n)
            yield from rank.allreduce(send, recv, n, op)
            results[rank.rank] = np.frombuffer(recv.read(), "<i8").tolist()

        run_spmd(chip, program, core_ids=list(range(mpi.size)))
        assert all(v == [7] * 4 for v in results.values())

    def test_barrier(self, backend):
        chip, mpi = make_mpi(backend)
        latest = [0.0]
        exits = {}

        def program(core):
            rank = mpi.attach(core)
            yield core.compute(float(rank.rank))
            latest[0] = max(latest[0], chip.now)
            yield from rank.barrier()
            exits[rank.rank] = chip.now

        run_spmd(chip, program, core_ids=list(range(mpi.size)))
        assert min(exits.values()) >= latest[0]

    def test_gather_and_allgather(self, backend):
        chip, mpi = make_mpi(backend, P=6)
        block = 32
        out = {}

        def program(core):
            rank = mpi.attach(core)
            src = rank.alloc(block)
            src.write(bytes([rank.rank + 1]) * block)
            gathered = rank.alloc(block * rank.size)
            yield from rank.gather(src, gathered, block)
            everyone = rank.alloc(block * rank.size)
            yield from rank.allgather(src, everyone, block)
            out[rank.rank] = everyone.read()
            if rank.rank == 0:
                out["root_gather"] = gathered.read()

        run_spmd(chip, program, core_ids=list(range(mpi.size)))
        expected = b"".join(bytes([r + 1]) * block for r in range(6))
        assert out["root_gather"] == expected
        assert all(out[r] == expected for r in range(6))

    def test_point_to_point(self, backend):
        chip, mpi = make_mpi(backend, P=4)
        got = {}

        def program(core):
            rank = mpi.attach(core)
            buf = rank.alloc(96)
            if rank.rank == 0:
                buf.write(b"Q" * 96)
                yield from rank.send(3, buf, 96)
            elif rank.rank == 3:
                yield from rank.recv(0, buf, 96)
                got["data"] = buf.read()

        run_spmd(chip, program, core_ids=list(range(4)))
        assert got["data"] == b"Q" * 96


class TestBackendBehaviour:
    def test_invalid_backend(self):
        chip = SccChip(SccConfig())
        with pytest.raises(ValueError):
            Mpi(Comm(chip), backend="smoke-signals")

    def test_rma_backend_faster_for_bcast(self):
        def measure(backend):
            chip, mpi = make_mpi(backend, P=12)
            n = 96 * 32

            def program(core):
                rank = mpi.attach(core)
                buf = rank.alloc(n)
                if rank.rank == 0:
                    buf.write(bytes(n))
                yield from rank.bcast(buf, n)

            return run_spmd(chip, program, core_ids=list(range(12))).makespan

        assert measure("rma") < measure("two_sided")

    def test_mpb_budget_fits_both_backends(self):
        # Construction itself validates the MPB layouts.
        for backend in BACKENDS:
            chip = SccChip(SccConfig())
            Mpi(Comm(chip), backend=backend)
