"""The chaos engine: schedules, runner, shrinker, bundles, soak, CLI.

What is pinned here (docs/FAULTS.md §9):

- **Schedule validity layering**: :meth:`ChaosSchedule.validate` rejects
  backend/mode-incoherent schedules (core-primitive kinds off the SCC
  backend, adversary kinds outside Byzantine mode, network models off
  asyncio) *on top of* the existing :class:`FaultPlan` rules.
- **Deterministic classification**: running a schedule twice produces
  identical classification, status and decision digest -- the property
  repro bundles rely on; fault-free digests also agree *across*
  backends.
- **The acceptance counterexample**: a deliberately fragile baseline
  (``ft=False``) under dropped flag writes is a violation, the ddmin
  shrinker reduces it to <= 3 fault events, and the written bundle
  replays to the identical classification and digest.
- **Campaign bridge**: a lost :class:`FaultCampaign` trial converts into
  a chaos schedule whose bundle replays clean (self-reproducing
  failures).

``TrialRun``-style ``detail`` strings are *not* compared anywhere: the
watchdog names one of several stalled processes nondeterministically
(pre-existing kernel behaviour, see test_analytic.py); classification,
status, counts and digests are the deterministic surface.
"""

import json
import os

import pytest

from repro.bench import FaultCampaign
from repro.chaos import (
    BACKENDS, ChaosSchedule, ModelSpec, ReproBundle, ScheduleGenerator,
    campaign_counterexamples, chaos_payload, make_bundle, run_schedule,
    run_soak, schedule_for_trial, shrink, write_bundle,
    write_campaign_bundles,
)
from repro.cli import main as cli_main
from repro.faults import FaultKind, FaultSpec
from repro.obs import MetricsRegistry

# -- schedules ---------------------------------------------------------------


def _drop_flag(nth: int) -> FaultSpec:
    return FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=nth)


class TestScheduleValidity:
    def test_fault_free_schedule_validates(self):
        for backend in BACKENDS:
            ChaosSchedule(backend=backend).validate()

    def test_core_kinds_rejected_off_scc(self):
        s = ChaosSchedule(
            backend="asyncio",
            specs=(FaultSpec(FaultKind.CORE_PAUSE, core=1, duration=200.0),),
        )
        with pytest.raises(ValueError, match="core primitives"):
            s.validate()

    def test_adversary_kinds_need_byz(self):
        s = ChaosSchedule(
            mode="service",
            specs=(FaultSpec(FaultKind.EQUIVOCATE, core=0, duration=1),),
        )
        with pytest.raises(ValueError, match="byz"):
            s.validate()

    def test_models_only_on_asyncio(self):
        s = ChaosSchedule(backend="scc", model=ModelSpec(name="uniform",
                                                         lo=0.1, hi=1.0))
        with pytest.raises(ValueError, match="asyncio"):
            s.validate()

    def test_out_of_range_coordinates_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            ChaosSchedule(
                mesh=(2, 1),
                specs=(FaultSpec(FaultKind.LINK_DOWN, core=99,
                                 duration=200.0),),
            ).validate()
        with pytest.raises(ValueError, match="crash rank"):
            ChaosSchedule(mesh=(2, 1), crash=(99, "oc.fetch", 1)).validate()
        with pytest.raises(ValueError, match="partition group"):
            ChaosSchedule(
                backend="asyncio", mesh=(2, 1),
                model=ModelSpec(name="partition", groups=((0, 1), (99,)),
                                heal_at=100.0),
            ).validate()

    def test_plan_overlap_delegated_to_fault_rules(self):
        s = ChaosSchedule(specs=(_drop_flag(3), _drop_flag(3)))
        with pytest.raises(ValueError):
            s.validate()

    def test_json_round_trip(self):
        s = ChaosSchedule(
            backend="asyncio", mesh=(3, 2), chunks=2, mode="byz", seed=99,
            specs=(FaultSpec(FaultKind.EQUIVOCATE, core=0, duration=1),),
            crash=None,
            model=ModelSpec(name="linkdrop", p=0.05, lo=0.05, hi=2.0),
            label="pinned", ft_ack_data=True,
        )
        assert ChaosSchedule.from_json(s.to_json()) == s
        d = s.to_dict()
        d["version"] = 999
        with pytest.raises(ValueError, match="version"):
            ChaosSchedule.from_dict(d)

    def test_without_event_order(self):
        s = ChaosSchedule(
            backend="asyncio",
            specs=(_drop_flag(1), _drop_flag(4)),
            crash=(1, "oc.fetch", 1),
            model=ModelSpec(name="linkdrop", p=0.02),
        )
        assert s.n_events == 4
        assert s.without_event(0).specs == (_drop_flag(4),)
        assert s.without_event(2).crash is None
        assert s.without_event(3).model is None
        with pytest.raises(IndexError):
            s.without_event(4)


# -- runner / classification -------------------------------------------------


class TestRunnerClassification:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode", ["service", "byz", "ft", "baseline"])
    def test_fault_free_delivers(self, backend, mode):
        out = run_schedule(ChaosSchedule(backend=backend, mode=mode, seed=4))
        assert out.classification == "tolerated"
        assert out.status == "delivered"
        assert out.ok and not out.invariants
        assert out.digest

    @pytest.mark.parametrize("mode", ["service", "ft"])
    def test_fault_free_digest_matches_across_backends(self, mode):
        digests = {
            backend: run_schedule(
                ChaosSchedule(backend=backend, mode=mode, seed=4)
            ).digest
            for backend in BACKENDS
        }
        assert digests["scc"] == digests["asyncio"]

    def test_run_is_deterministic(self):
        s = ChaosSchedule(mode="service", seed=13, specs=(_drop_flag(2),))
        a, b = run_schedule(s), run_schedule(s)
        assert (a.classification, a.status, a.digest, a.n_injected) \
            == (b.classification, b.status, b.digest, b.n_injected)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ft_masks_dropped_flag(self, backend):
        out = run_schedule(ChaosSchedule(
            backend=backend, mode="ft", seed=7, specs=(_drop_flag(2),),
        ))
        assert out.classification == "tolerated"
        assert out.status == "recovered"
        assert out.n_injected >= 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_service_survives_member_crash(self, backend):
        out = run_schedule(ChaosSchedule(
            backend=backend, mode="service", mesh=(2, 2), seed=9,
            crash=(3, "oc.fetch", 1),
        ))
        assert out.classification == "tolerated"
        assert out.status == "recovered"

    def test_byz_source_equivocation_is_not_a_violation(self):
        # Bracha validity only binds for an honest source: uniform
        # agreement on the attacker's variant must classify tolerated.
        out = run_schedule(ChaosSchedule(
            mode="byz", mesh=(2, 2), seed=21,
            specs=(FaultSpec(FaultKind.EQUIVOCATE, core=0, nth=1,
                             duration=1),),
        ))
        assert out.classification in ("tolerated", "refused")
        assert out.status != "corrupt"

    def test_asyncio_partition_heals_inside_suspicion(self):
        out = run_schedule(ChaosSchedule(
            backend="asyncio", mode="service", mesh=(2, 2), seed=5,
            model=ModelSpec(name="partition", groups=((0, 1, 2, 3, 4, 5),
                                                      (6, 7)),
                            heal_at=400.0),
        ))
        assert out.ok

    def test_baseline_under_drops_is_a_violation(self):
        out = run_schedule(_broken_schedule())
        assert out.classification == "violation"
        assert out.status == "deadlock"
        assert not out.ok


def _broken_schedule() -> ChaosSchedule:
    """The acceptance-criteria demo: ``ft=False`` under dropped flag
    writes deadlocks (a receiver spins on a flag that never flips).
    Only the core-1 drop is load-bearing; the other two events exist
    for the shrinker to strip."""
    return ChaosSchedule(
        backend="scc", mesh=(4, 3), chunks=2, mode="baseline", seed=17,
        specs=(
            FaultSpec(FaultKind.DROP_FLAG_WRITE, core=1, nth=2),
            FaultSpec(FaultKind.DROP_FLAG_WRITE, core=3, nth=1),
            FaultSpec(FaultKind.DROP_FLAG_WRITE, core=5, nth=3),
        ),
        label="broken-config demo",
    )


# -- shrinker ----------------------------------------------------------------


class TestShrinker:
    def test_broken_config_shrinks_to_three_events_or_fewer(self):
        result = shrink(_broken_schedule())
        assert result.target == ("violation", "deadlock")
        assert result.shrunk
        assert result.schedule.n_events <= 3
        assert result.outcome.classification == "violation"
        assert result.outcome.status == "deadlock"
        # 1-minimality: no remaining event can be removed.
        for i in range(result.schedule.n_events):
            leaner = result.schedule.without_event(i)
            out = run_schedule(leaner)
            assert (out.classification, out.status) \
                != ("violation", "deadlock"), i

    def test_wrong_target_rejected(self):
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink(ChaosSchedule(seed=3), target=("violation", "deadlock"))

    def test_run_budget_respected(self):
        result = shrink(_broken_schedule(), max_runs=5)
        assert result.n_runs <= 5


# -- bundles -----------------------------------------------------------------


class TestBundles:
    def test_round_trip_and_faithful_replay(self, tmp_path):
        outcome = run_schedule(_broken_schedule())
        path = write_bundle(outcome, str(tmp_path))
        loaded = ReproBundle.load(path)
        assert loaded.schedule == outcome.schedule
        replayed, mismatches = loaded.replay()
        assert mismatches == []
        assert replayed.digest == outcome.digest

    def test_replay_flags_divergence(self):
        outcome = run_schedule(ChaosSchedule(seed=2))
        bundle = make_bundle(outcome)
        forged = ReproBundle(
            schedule=bundle.schedule,
            expected={**bundle.expected, "digest": "bogus",
                      "status": "deadlock"},
        )
        _, mismatches = forged.replay()
        assert len(mismatches) == 2

    def test_collision_suffixing(self, tmp_path):
        outcome = run_schedule(ChaosSchedule(seed=2))
        first = write_bundle(outcome, str(tmp_path))
        second = write_bundle(outcome, str(tmp_path))
        assert first != second
        assert json.load(open(first)) == json.load(open(second))

    def test_version_gate(self):
        outcome = run_schedule(ChaosSchedule(seed=2))
        d = make_bundle(outcome).to_dict()
        d["version"] = 999
        with pytest.raises(ValueError, match="version"):
            ReproBundle.from_dict(d)


# -- campaign bridge (self-reproducing failures) -----------------------------


class TestCampaignBridge:
    def test_lost_campaign_trials_become_replayable_bundles(self, tmp_path):
        # Bare FT has no integrity layer: corrupted data lines are lost
        # trials by design, exactly the kind that must self-reproduce.
        campaign = FaultCampaign(
            trials=4, seed=6, compare_baseline=False,
            kinds=(FaultKind.CORRUPT_DATA_WRITE,),
        )
        result = campaign.run()
        lost = list(campaign_counterexamples(result))
        assert lost, "corrupt-data campaign should lose FT trials"
        written = write_campaign_bundles(
            campaign, result, str(tmp_path), limit=2
        )
        assert 1 <= len(written) <= 2
        for path, leg, index in written:
            bundle = ReproBundle.load(path)
            assert bundle.meta["leg"] == leg
            assert bundle.meta["trial_index"] == index
            _, mismatches = bundle.replay()
            assert mismatches == []

    def test_trial_conversion_preserves_payload_and_knobs(self):
        campaign = FaultCampaign(trials=1, seed=6, compare_baseline=False)
        plan = campaign.trial_plans()[0]
        s = schedule_for_trial(campaign, plan, "ft")
        assert s.specs == tuple(plan.specs)
        assert (s.k, s.chunk_lines, s.num_buffers) \
            == (campaign.k, campaign.chunk_lines, campaign.num_buffers)
        assert chaos_payload(s) == campaign._payload()

    def test_non_root_campaign_rejected(self):
        campaign = FaultCampaign(trials=1, seed=1, root=3,
                                 compare_baseline=False)
        plan = campaign.trial_plans()[0]
        with pytest.raises(ValueError, match="root"):
            schedule_for_trial(campaign, plan, "ft")


# -- generator + soak --------------------------------------------------------


class TestSoak:
    def test_hardened_soak_is_violation_free(self):
        gen = ScheduleGenerator(seed=3, meshes=((2, 2), (3, 2)))
        metrics = MetricsRegistry()
        result = run_soak(gen, trials=12, jobs=1, metrics=metrics)
        assert result.n_trials == 12
        assert result.ok
        assert sum(result.counts.values()) == 12
        assert metrics.flat()["chaos.trials"] == 12
        assert "zero violations" in result.summary()

    def test_fragile_soak_shrinks_and_bundles(self, tmp_path):
        gen = ScheduleGenerator(
            seed=8, backends=("scc",), meshes=((2, 2),),
            modes=("baseline",), fragile=True,
        )
        result = run_soak(
            gen, trials=8, jobs=1, out_dir=str(tmp_path), shrink_runs=40,
        )
        assert not result.ok
        assert result.violations and result.bundles
        assert len(result.shrinks) == len(result.violations)
        for path in result.bundles:
            _, mismatches = ReproBundle.load(path).replay()
            assert mismatches == []
        assert "counterexample" in result.summary()

    def test_baseline_mode_needs_fragile_opt_in(self):
        with pytest.raises(ValueError, match="fragile"):
            ScheduleGenerator(modes=("baseline",))


# -- pinned bundles ----------------------------------------------------------

_BUNDLE_DIR = os.path.join(os.path.dirname(__file__), "chaos_bundles")
_PINNED = sorted(
    os.path.join(_BUNDLE_DIR, f)
    for f in os.listdir(_BUNDLE_DIR) if f.endswith(".json")
)


@pytest.mark.chaos
class TestPinnedBundles:
    """Tier-1 chaos smoke: the committed bundles must replay to their
    recorded classification, status, digest and injection count on
    every build -- a drift in any of those is a protocol or
    determinism regression, not a flake."""

    def test_pinned_coordinates_are_all_present(self):
        assert len(_PINNED) == 4

    @pytest.mark.parametrize(
        "path", _PINNED, ids=[os.path.basename(p) for p in _PINNED]
    )
    def test_pinned_bundle_replays_exactly(self, path):
        bundle = ReproBundle.load(path)
        outcome, mismatches = bundle.replay()
        assert mismatches == [], outcome.describe()

    def test_pinned_set_spans_the_classification_space(self):
        got = set()
        for path in _PINNED:
            got.add(ReproBundle.load(path).expected["classification"])
        assert got == {"tolerated", "refused", "violation"}


# -- CLI ---------------------------------------------------------------------


class TestChaosCli:
    def test_soak_smoke(self, capsys):
        rc = cli_main(["chaos", "--trials", "8", "--seed", "2",
                       "--meshes", "2x2", "--jobs", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Chaos soak: 8 schedules" in out

    def test_replay_pinned_bundle(self, tmp_path, capsys):
        outcome = run_schedule(ChaosSchedule(seed=2))
        path = write_bundle(outcome, str(tmp_path))
        assert cli_main(["chaos", "--replay", path]) == 0
        assert "[OK]" in capsys.readouterr().out

    def test_replay_mismatch_fails(self, tmp_path, capsys):
        outcome = run_schedule(ChaosSchedule(seed=2))
        bundle = make_bundle(outcome)
        forged = ReproBundle(
            schedule=bundle.schedule,
            expected={**bundle.expected, "digest": "bogus"},
        )
        path = str(tmp_path / "forged.json")
        forged.save(path)
        assert cli_main(["chaos", "--replay", path]) == 1
        assert "[MISMATCH]" in capsys.readouterr().out

    def test_baseline_without_fragile_is_usage_error(self, capsys):
        rc = cli_main(["chaos", "--trials", "1", "--modes", "baseline"])
        assert rc == 2
        assert "fragile" in capsys.readouterr().err

    def test_zero_trials_is_usage_error(self, capsys):
        assert cli_main(["chaos", "--trials", "0"]) == 2
        assert "ERROR" in capsys.readouterr().err

    def test_bad_mesh_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["chaos", "--trials", "1", "--meshes", "wide"])

    def test_faults_bundle_dir_emits_repro_lines(self, tmp_path, capsys):
        rc = cli_main([
            "faults", "--trials", "3", "--seed", "6", "--no-baseline",
            "--kinds", "corrupt_data", "--jobs", "1",
            "--bundle-dir", str(tmp_path),
        ])
        assert rc == 1  # lost trials: that is the point
        out = capsys.readouterr().out
        assert "repro: PYTHONPATH=src python -m repro chaos --replay" in out
        assert list(tmp_path.glob("campaign-seed6-trial*.json"))
