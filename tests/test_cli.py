"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_spec, build_parser, main


class TestSpecParsing:
    def test_oc_with_k(self):
        spec = _parse_spec("oc:12")
        assert spec.algo == "oc" and spec.k == 12

    def test_oc_default_k(self):
        spec = _parse_spec("oc")
        assert spec.algo == "oc" and spec.k == 7

    def test_named_algorithms(self):
        assert _parse_spec("binomial").algo == "binomial"
        assert _parse_spec("scatter_allgather").algo == "scatter_allgather"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            _parse_spec("telepathy")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "48" in out and "6x4" in out

    def test_info_custom_mesh(self, capsys):
        assert main(["info", "--mesh-cols", "8", "--mesh-rows", "8"]) == 0
        assert "128" in capsys.readouterr().out

    def test_bcast(self, capsys):
        rc = main(["bcast", "--algo", "oc", "--k", "3", "--cache-lines", "4",
                   "--iters", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OC-Bcast k=3" in out
        assert "mean latency" in out

    def test_bcast_binomial(self, capsys):
        rc = main(["bcast", "--algo", "binomial", "--cache-lines", "2",
                   "--iters", "1"])
        assert rc == 0
        assert "binomial" in capsys.readouterr().out

    def test_sweep_latency(self, capsys):
        rc = main(["sweep", "--algos", "oc:7", "--sizes", "1", "4",
                   "--iters", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OC-Bcast k=7" in out and "latency" in out

    def test_sweep_throughput_with_chart(self, capsys):
        rc = main(["sweep", "--algos", "oc:7", "binomial", "--sizes", "1", "16",
                   "--iters", "1", "--throughput", "--chart"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "o=OC-Bcast k=7" in out  # chart legend

    def test_contention(self, capsys):
        rc = main(["contention", "--op", "put", "--lines", "1",
                   "--counts", "1", "4", "--iters", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Concurrent put" in out

    def test_fit(self, capsys):
        rc = main(["fit", "--iters", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "l_hop" in out and "0.000%" in out

    def test_faults_byz_campaign(self, capsys):
        rc = main(["faults", "--trials", "2", "--byz", "--adversaries", "3",
                   "--no-baseline", "--cache-lines", "96",
                   "--mesh-cols", "3", "--mesh-rows", "2", "--timeline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Byzantine campaign" in out
        assert "rbc tax" in out
        assert "byz agreement rate: 100.0%" in out
        assert "fault.injected" in out  # the timeline printed

    def test_faults_byz_rejects_too_many_adversaries(self, capsys):
        rc = main(["faults", "--trials", "1", "--byz", "--adversaries", "12",
                   "--no-baseline", "--mesh-cols", "3", "--mesh-rows", "2"])
        assert rc == 2

    def test_model_table2(self, capsys):
        assert main(["model", "--what", "table2"]) == 0
        out = capsys.readouterr().out
        assert "scatter-allgather" in out

    def test_model_fig6_chart(self, capsys):
        assert main(["model", "--what", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "binomial" in out and "|" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
