"""Tests for mesh geometry, X-Y routing and distances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scc import Mesh, SccChip, SccConfig


@pytest.fixture(scope="module")
def chip():
    return SccChip(SccConfig())


def test_tile_of_core_layout(chip):
    mesh = chip.mesh
    assert mesh.tile_of_core(0) == (0, 0)
    assert mesh.tile_of_core(1) == (0, 0)
    assert mesh.tile_of_core(2) == (1, 0)
    assert mesh.tile_of_core(12) == (0, 1)
    assert mesh.tile_of_core(47) == (5, 3)


def test_cores_of_tile_inverts_tile_of_core(chip):
    mesh = chip.mesh
    for tile in mesh.tiles():
        for core in mesh.cores_of_tile(tile):
            assert mesh.tile_of_core(core) == tile


def test_same_tile_distance_is_one(chip):
    assert chip.mesh.core_distance(0, 1) == 1
    # Local MPB also goes through the router: d >= 1 always.
    assert chip.mesh.core_distance(5, 5) == 1


def test_max_distance_on_scc_is_nine(chip):
    mesh = chip.mesh
    dists = {
        mesh.core_distance(a, b)
        for a in range(chip.num_cores)
        for b in range(chip.num_cores)
    }
    assert max(dists) == 9  # 5 + 3 Manhattan + 1, as in Figure 3
    assert min(dists) == 1


def test_distance_is_symmetric(chip):
    mesh = chip.mesh
    for a in range(0, chip.num_cores, 7):
        for b in range(0, chip.num_cores, 5):
            assert mesh.core_distance(a, b) == mesh.core_distance(b, a)


def test_mem_distance_range_matches_figure3(chip):
    dists = {chip.mesh.mem_distance(c) for c in range(chip.num_cores)}
    assert dists == {1, 2, 3, 4}  # Figure 3's memory panels sweep 1..4


def test_mc_tiles_are_the_corners(chip):
    assert set(chip.mesh.mc_tiles) == {(0, 0), (5, 0), (0, 3), (5, 3)}


def test_mc_assignment_is_nearest_corner(chip):
    mesh = chip.mesh
    for c in range(chip.num_cores):
        tile = mesh.tile_of_core(c)
        mc = mesh.mc_tile_of_core(c)
        best = min(mesh.manhattan(tile, m) for m in mesh.mc_tiles)
        assert mesh.manhattan(tile, mc) == best


def test_route_is_x_then_y(chip):
    path = chip.mesh.route((1, 1), (4, 3))
    assert path == [(1, 1), (2, 1), (3, 1), (4, 1), (4, 2), (4, 3)]


def test_route_handles_negative_directions(chip):
    path = chip.mesh.route((4, 3), (1, 1))
    assert path == [(4, 3), (3, 3), (2, 3), (1, 3), (1, 2), (1, 1)]


def test_route_self_is_single_tile(chip):
    assert chip.mesh.route((2, 2), (2, 2)) == [(2, 2)]


def test_path_links_count_equals_manhattan(chip):
    mesh = chip.mesh
    links = mesh.path_links((0, 0), (5, 3))
    assert len(links) == 8
    # Consecutive links chain up.
    for (a, b), (c, _) in zip(links, links[1:]):
        assert b == c


def test_core_validation(chip):
    with pytest.raises(ValueError):
        chip.mesh.tile_of_core(48)
    with pytest.raises(ValueError):
        chip.mesh.tile_of_core(-1)
    with pytest.raises(ValueError):
        chip.mesh.route((6, 0), (0, 0))


def test_link_lookup_requires_model_links(chip):
    with pytest.raises(KeyError):
        chip.mesh.link((0, 0), (1, 0))


def test_links_exist_when_enabled():
    chip = SccChip(SccConfig(model_links=True))
    link = chip.mesh.link((0, 0), (1, 0))
    assert link.capacity == 1
    # 2*(cols-1)*rows + 2*(rows-1)*cols directed links
    expected = 2 * 5 * 4 + 2 * 3 * 6
    assert len(chip.mesh._links) == expected


@settings(max_examples=50, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=47),
    b=st.integers(min_value=0, max_value=47),
)
def test_property_distance_is_manhattan_plus_one(a, b):
    mesh = SccChip(SccConfig()).mesh
    ta, tb = mesh.tile_of_core(a), mesh.tile_of_core(b)
    assert mesh.core_distance(a, b) == abs(ta[0] - tb[0]) + abs(ta[1] - tb[1]) + 1


@settings(max_examples=30, deadline=None)
@given(
    ax=st.integers(0, 5), ay=st.integers(0, 3),
    bx=st.integers(0, 5), by=st.integers(0, 3),
)
def test_property_route_length_and_endpoints(ax, ay, bx, by):
    mesh = SccChip(SccConfig()).mesh
    path = mesh.route((ax, ay), (bx, by))
    assert path[0] == (ax, ay)
    assert path[-1] == (bx, by)
    assert len(path) == abs(ax - bx) + abs(ay - by) + 1
    # Every step moves to a mesh neighbour.
    for (x1, y1), (x2, y2) in zip(path, path[1:]):
        assert abs(x1 - x2) + abs(y1 - y2) == 1


def test_bigger_mesh_geometry():
    chip = SccChip(SccConfig(mesh_cols=16, mesh_rows=16))
    assert chip.num_cores == 512
    mesh = chip.mesh
    assert mesh.core_distance(0, chip.num_cores - 1) == 15 + 15 + 1
    assert set(mesh.mc_tiles) == {(0, 0), (15, 0), (0, 15), (15, 15)}
