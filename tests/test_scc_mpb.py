"""Tests for the message-passing buffer: storage, bounds, watchers."""

import pytest

from repro.scc import SccChip, SccConfig
from repro.scc.config import CACHE_LINE


@pytest.fixture()
def chip():
    return SccChip(SccConfig())


def test_mpb_size_and_lines(chip):
    mpb = chip.mpbs[0]
    assert mpb.size == 8192
    assert mpb.lines == 256


def test_write_then_read_roundtrip(chip):
    mpb = chip.mpbs[3]
    payload = bytes(range(64))
    mpb.write_bytes(128, payload)
    assert mpb.read_bytes(128, 64) == payload


def test_mpb_starts_zeroed(chip):
    assert chip.mpbs[7].read_bytes(0, 8192) == bytes(8192)


@pytest.mark.parametrize(
    "offset,nbytes",
    [(-1, 4), (0, 8193), (8192, 1), (8190, 4)],
)
def test_out_of_range_access_rejected(chip, offset, nbytes):
    with pytest.raises(IndexError):
        chip.mpbs[0].read_bytes(offset, nbytes)
    with pytest.raises(IndexError):
        chip.mpbs[0].write_bytes(offset, bytes(nbytes))


def test_negative_length_read_rejected(chip):
    with pytest.raises(IndexError):
        chip.mpbs[0].read_bytes(4, -1)


def test_watcher_fires_on_write_to_line(chip):
    mpb = chip.mpbs[0]
    ev = mpb.watch(64)
    assert not ev.triggered
    mpb.write_bytes(64, b"\x01")
    assert ev.triggered


def test_watcher_fires_on_any_byte_of_the_line(chip):
    mpb = chip.mpbs[0]
    ev = mpb.watch(64)  # line covers bytes 64..95
    mpb.write_bytes(95, b"\x01")
    assert ev.triggered


def test_watcher_not_fired_by_other_lines(chip):
    mpb = chip.mpbs[0]
    ev = mpb.watch(64)
    mpb.write_bytes(0, b"\x01")
    mpb.write_bytes(96, b"\x01")
    assert not ev.triggered


def test_watcher_fires_on_spanning_write(chip):
    mpb = chip.mpbs[0]
    ev_lo = mpb.watch(32)
    ev_hi = mpb.watch(96)
    # Write covering lines 1..3 wakes both watchers.
    mpb.write_bytes(40, bytes(80))
    assert ev_lo.triggered
    assert ev_hi.triggered


def test_multiple_watchers_same_line_all_fire(chip):
    mpb = chip.mpbs[0]
    evs = [mpb.watch(0) for _ in range(3)]
    mpb.write_bytes(0, b"z")
    assert all(e.triggered for e in evs)


def test_watch_offset_normalised_to_line(chip):
    mpb = chip.mpbs[0]
    ev = mpb.watch(70)  # inside line starting at 64
    mpb.write_bytes(64, b"\x01")
    assert ev.triggered


def test_each_core_has_its_own_port(chip):
    ports = {id(m.port) for m in chip.mpbs}
    assert len(ports) == chip.num_cores


def test_watchers_cleared_after_fire(chip):
    mpb = chip.mpbs[0]
    mpb.watch(0)
    mpb.write_bytes(0, b"a")
    assert (0 // CACHE_LINE) * CACHE_LINE not in mpb._watchers
