"""Byzantine-tolerant broadcast: the Bracha quorum math, the RBC
echo/ready rounds under live adversaries, and the I7 agreement/validity
audit.

The integration scenarios run the RBC-hardened service
(``OcBcastConfig(byz=True)``) on the 12-core chip, where one round is
fast, and classify outcomes over *honest* ranks only -- an adversary's
own return value proves nothing.  The 48-core headline campaigns (100
trials, ``f = 15`` mixed adversaries) live in the ``faults``-marked
acceptance classes at the bottom.
"""

import zlib
from dataclasses import replace

import pytest

from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.member import OcBcastService
from repro.member.rbc import (
    echo_quorum,
    max_faulty,
    ready_amplify,
    ready_quorum,
)
from repro.member.service import DEFAULT_SERVICE_OC
from repro.obs import InvariantChecker, MetricsRegistry
from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd
from repro.scc.config import CACHE_LINE
from repro.sim import Tracer
from repro.sim.trace import TraceRecord

CFG12 = SccConfig(mesh_cols=3, mesh_rows=2)
ONE_CHUNK = 96 * CACHE_LINE
TWO_CHUNKS = 2 * 96 * CACHE_LINE


class TestQuorumMath:
    """Threshold properties for every communicator size this repo runs
    (and then some): the safety arguments are counting arguments, so the
    tests just count."""

    def test_thresholds_for_every_size(self):
        for n in range(4, 49):
            f = max_faulty(n)
            assert 3 * f + 1 <= n < 3 * (f + 1) + 1
            e, a, r = echo_quorum(n), ready_amplify(n), ready_quorum(n)
            # Classic Bracha thresholds.
            assert a == f + 1
            assert r == 2 * f + 1
            assert e >= r
            # A quorum must be reachable with every adversary silent...
            assert e <= n - f
            # ...and two echo quorums must intersect in an honest member,
            # which is what makes the agreed digest unique.
            assert 2 * e - n >= f + 1
            # 2f+1 READY votes contain at least f+1 honest ones -- enough
            # to push every other honest member past the amplify bar.
            assert r - f >= a

    def test_exact_3f_plus_1_gives_classic_quorums(self):
        for f in range(1, 16):
            n = 3 * f + 1
            assert max_faulty(n) == f
            assert echo_quorum(n) == 2 * f + 1

    def test_headline_sizes(self):
        # The paper's 48-core chip and the small test mesh.
        assert (max_faulty(48), echo_quorum(48)) == (15, 32)
        assert (ready_amplify(48), ready_quorum(48)) == (16, 31)
        assert (max_faulty(12), echo_quorum(12)) == (3, 8)
        assert (ready_amplify(12), ready_quorum(12)) == (4, 7)

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError, match="at least one member"):
            max_faulty(0)


def _payload(nbytes: int) -> bytes:
    return bytes((i * 131 + 7) % 256 for i in range(nbytes))


def _run_byz(config, num_cores, specs, nbytes, *, watchdog=50_000.0):
    """One broadcast through the RBC-hardened service; returns
    ``(per-rank (status, crc), tracer, chip)``."""
    payload = _payload(nbytes)
    plan = FaultPlan(tuple(specs), num_cores=num_cores, label="test")
    tracer = Tracer(enabled=True)
    chip = SccChip(
        config, tracer=tracer,
        faults=FaultInjector(plan) if specs else None,
        metrics=MetricsRegistry(),
    )
    comm = Comm(chip)
    svc = OcBcastService(
        comm, root=0, oc_config=replace(DEFAULT_SERVICE_OC, byz=True)
    )

    def program(core):
        cc = comm.attach(core)
        buf = cc.alloc(nbytes)
        if cc.rank == 0:
            buf.write(payload)
        status = yield from svc.bcast(cc, buf, nbytes)
        return (status, zlib.crc32(buf.read()))

    chip.sim.start_watchdog(watchdog)
    res = run_spmd(chip, program)
    return res.values, tracer, chip


class TestRbcRounds:
    def test_fault_free_run_delivers_source_value_everywhere(self):
        values, tracer, chip = _run_byz(CFG12, 12, (), ONE_CHUNK)
        want = zlib.crc32(_payload(ONE_CHUNK))
        assert all(status == "ok" for status, _ in values)
        assert {crc for _, crc in values} == {want}
        # One vote round per member, no repair traffic.
        assert chip.metrics.counters["rbc.rounds"].value == 12
        assert "rbc.refetches" not in chip.metrics.counters
        assert "rbc.refusals" not in chip.metrics.counters

    def test_equivocation_is_outvoted_and_repaired(self):
        # The source stages two payload variants; the echo quorum picks
        # one digest, the losing-side members re-fetch from a winning
        # voter, and every honest member delivers the same bytes.
        spec = FaultSpec(FaultKind.EQUIVOCATE, core=0, nth=1, duration=1)
        values, tracer, chip = _run_byz(CFG12, 12, (spec,), ONE_CHUNK)
        kinds = [r.kind for r in tracer.records]
        assert "oc.adv.equivocate" in kinds  # the attack actually fired
        honest = [v for r, v in enumerate(values) if r != 0]
        assert all(status == "ok" for status, _ in honest)
        assert len({crc for _, crc in honest}) == 1  # agreement
        # At least one member sat on the losing side and repaired.
        assert chip.metrics.counters["rbc.refetches"].value >= 1
        assert "rbc.refetch" in kinds

    def test_no_delivery_below_echo_quorum(self):
        # 5 liars on the 12-core chip leave only 7 honest votes -- one
        # short of the echo quorum of 8 -- and consistent lies cannot be
        # amplified either (no honest member ever casts READY).  Every
        # honest member must refuse rather than deliver.
        liars = (2, 4, 6, 8, 10)
        specs = [
            FaultSpec(FaultKind.LIE_IN_QUORUM, core=c, nth=1) for c in liars
        ]
        values, tracer, chip = _run_byz(CFG12, 12, specs, ONE_CHUNK)
        honest = [v for r, v in enumerate(values) if r not in liars]
        assert all(status == "detected" for status, _ in honest)
        assert any(r.kind == "rbc.no_quorum" for r in tracer.records)
        assert chip.metrics.counters["rbc.refusals"].value >= len(honest)

    def test_forged_votes_cannot_form_a_false_quorum(self):
        # FORGE_FLAG_VALUE writes per-member garbage (vote equivocation):
        # it wastes the forger's vote but can never assemble a quorum on
        # a wrong digest.  f = 3 forgers leave 9 >= 8 honest votes, so
        # the group still delivers the source value.
        forgers = (3, 5, 9)
        specs = [
            FaultSpec(FaultKind.FORGE_FLAG_VALUE, core=c, nth=1)
            for c in forgers
        ]
        values, tracer, chip = _run_byz(CFG12, 12, specs, ONE_CHUNK)
        want = zlib.crc32(_payload(ONE_CHUNK))
        honest = [v for r, v in enumerate(values) if r not in forgers]
        assert all(status == "ok" for status, _ in honest)
        assert {crc for _, crc in honest} == {want}

    def test_multi_chunk_equivocation_never_diverges(self):
        # Two chunks: the non-final chunk's doneFlags are immediate, so
        # the restage lands inside the children's copy window and the
        # split is real.  Whatever the round concludes -- repair or
        # refusal -- honest members must not diverge.
        spec = FaultSpec(FaultKind.EQUIVOCATE, core=0, nth=1, duration=1)
        values, tracer, chip = _run_byz(CFG12, 12, (spec,), TWO_CHUNKS)
        honest = [v for r, v in enumerate(values) if r != 0]
        ok_crcs = {crc for status, crc in honest if status == "ok"}
        assert len(ok_crcs) <= 1  # agreement, delivered or not
        assert all(status in ("ok", "detected") for status, _ in honest)


class TestInvariantI7:
    def _rec(self, kind, source, **detail):
        return TraceRecord(0.0, source, kind, detail)

    def test_live_equivocation_round_audits_clean(self):
        spec = FaultSpec(FaultKind.EQUIVOCATE, core=0, nth=1, duration=1)
        payload = _payload(ONE_CHUNK)
        plan = FaultPlan((spec,), num_cores=12, label="i7")
        chip = SccChip(
            CFG12, tracer=Tracer(enabled=True), faults=FaultInjector(plan),
            metrics=MetricsRegistry(),
        )
        checker = InvariantChecker(lossless=False).attach(chip)
        comm = Comm(chip)
        svc = OcBcastService(
            comm, root=0, oc_config=replace(DEFAULT_SERVICE_OC, byz=True)
        )

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(ONE_CHUNK)
            if cc.rank == 0:
                buf.write(payload)
            return (yield from svc.bcast(cc, buf, ONE_CHUNK))

        chip.sim.start_watchdog(50_000.0)
        run_spmd(chip, program)
        checker.check()
        assert checker.records_seen > 0

    def test_divergent_honest_deliveries_flag_violation(self):
        c = InvariantChecker()
        c.feed(self._rec("rbc.outcome", "rank1", msg=1, status="ok",
                         src=0, crc=0x1111))
        c.feed(self._rec("rbc.outcome", "rank2", msg=1, status="ok",
                         src=0, crc=0x2222))
        assert [v.invariant for v in c.violations] == ["byzantine-agreement"]

    def test_delivery_differing_from_honest_source_flags_validity(self):
        c = InvariantChecker()
        c.feed(self._rec("rbc.outcome", "rank0", msg=1, status="ok",
                         src=1, crc=0x1111, input_crc=0x1111))
        c.feed(self._rec("rbc.outcome", "rank3", msg=1, status="ok",
                         src=0, crc=0x9999))
        # Both the agreement and the validity clause fire -- the rogue
        # delivery disagrees with the first honest one AND the source.
        assert c.violations
        assert {v.invariant for v in c.violations} == {"byzantine-agreement"}
        assert any("validity requires" in str(v) for v in c.violations)

    def test_compromised_ranks_claims_are_ignored(self):
        c = InvariantChecker()
        c.feed(self._rec(
            "fault.injected", "faults",
            fault="lie_in_quorum", site="core2 vote round #1", nth=1,
        ))
        c.feed(self._rec("rbc.outcome", "rank1", msg=1, status="ok",
                         src=0, crc=0x1111))
        # rank2 fired an adversary fault: its divergent claim is noise.
        c.feed(self._rec("rbc.outcome", "rank2", msg=1, status="ok",
                         src=0, crc=0x2222))
        assert c.ok

    def test_refusals_do_not_count_as_deliveries(self):
        c = InvariantChecker()
        c.feed(self._rec("rbc.outcome", "rank1", msg=1, status="ok",
                         src=0, crc=0x1111))
        c.feed(self._rec("rbc.outcome", "rank2", msg=1, status="detected",
                         src=0))
        assert c.ok


@pytest.mark.faults
class TestByzantineAcceptanceCampaign:
    """ISSUE 6's headline experiment: a 100-trial seeded campaign on the
    48-core chip with ``f = 15`` mixed adversaries per trial (one
    equivocating source + forged and lying quorum votes).  Honest
    members must never diverge: every trial ends agreed or uniformly
    refused, and the fault-free Byzantine tax stays under the 15%
    guard."""

    def test_hundred_trial_f15_mixed_campaign(self):
        from repro.bench import FaultCampaign, default_jobs, run_campaign_parallel

        campaign = FaultCampaign(
            trials=100,
            seed=6,
            nbytes=TWO_CHUNKS,
            byz=True,
            adversaries=15,
            compare_baseline=False,
            watchdog_interval=100_000.0,
        )
        result = run_campaign_parallel(campaign, jobs=default_jobs())
        counts = result.byz_counts
        assert counts["agreed"] + counts["detected"] == 100
        assert counts["disagreement"] == 0
        assert counts["partial"] == 0
        assert counts["deadlock"] == 0 and counts["timeout"] == 0
        assert result.byz_agreement_rate == 1.0
        # Detection latency telemetry came back.  Only trials where some
        # member repaired or refused observe a TTD -- when the honest
        # quorum wins outright there is nothing to detect -- so the count
        # is well below the trial count but must still be substantial.
        assert result.byz_ttd_summary()["count"] >= 50
        # Fault-free Byzantine tax under the perf guard.
        assert result.rbc_tax_pct < 15.0

    def test_beyond_f_adversaries_refuse_not_diverge(self):
        # f+1 = 16 adversaries exceed what the quorums tolerate: the
        # protocol must degrade to detection, never to divergence.
        from repro.bench import FaultCampaign, default_jobs, run_campaign_parallel

        campaign = FaultCampaign(
            trials=10,
            seed=7,
            nbytes=TWO_CHUNKS,
            byz=True,
            adversaries=16,
            compare_baseline=False,
            watchdog_interval=100_000.0,
        )
        result = run_campaign_parallel(campaign, jobs=default_jobs())
        counts = result.byz_counts
        assert counts["disagreement"] == 0
        assert counts["partial"] == 0
        assert counts["agreed"] + counts["detected"] == 10
