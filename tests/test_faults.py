"""Tests for the deterministic fault-injection subsystem.

Covers the plan/spec model, occurrence-count addressing, one test per
fault kind, the kernel-level detectors (rich deadlock diagnostics,
watchdog, poll-budget timeouts), the acked-write recovery primitives,
and the seeded-determinism contract (same plan => byte-identical trace).
"""

import pytest

from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectionRecord,
)
from repro.rcce import Comm
from repro.rcce.flags import FlagValue
from repro.scc import SccChip, SccConfig, run_spmd
from repro.sim import (
    DeadlockError,
    FaultInjected,
    SimError,
    Simulator,
    Tracer,
    WatchdogError,
)
from repro.sim.errors import TimeoutError as SimTimeoutError


def faulty_chip(*specs, tracer=None):
    return SccChip(
        SccConfig(), tracer=tracer, faults=FaultInjector(FaultPlan(specs))
    )


class TestPlanModel:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=0)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.LINK_STALL)  # stall needs a duration
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.CORE_CRASH)  # crash needs a target core

    def test_plan_is_iterable_and_labelled(self):
        spec = FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=3)
        plan = FaultPlan((spec,), label="x")
        assert list(plan) == [spec]
        assert plan.label == "x"

    def test_category_mapping(self):
        assert FaultSpec(FaultKind.DROP_FLAG_WRITE).category == "flag_write"
        assert FaultSpec(FaultKind.DROP_DATA_WRITE).category == "data_write"
        assert (
            FaultSpec(FaultKind.LINK_STALL, duration=1.0).category == "mpb_access"
        )
        assert FaultSpec(FaultKind.CORE_CRASH, core=1).category == "core_op"


class TestOccurrenceAddressing:
    def test_nth_global_flag_write(self):
        chip = faulty_chip(FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=2))
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            yield from cc.flag_set(1, f, FlagValue(0, 1))  # 1st: delivered
            yield from cc.flag_set(1, f, FlagValue(0, 2))  # 2nd: dropped
            yield from cc.flag_set(1, f, FlagValue(0, 3))  # 3rd: delivered

        run_spmd(chip, prog, core_ids=[0])
        assert f.peek(chip, 1) == FlagValue(0, 3)
        assert chip.faults.n_injected == 1
        assert chip.faults.injected[0].spec.nth == 2

    def test_per_core_nth_targets_owner(self):
        # nth counts per destination MPB when a core is named.
        chip = faulty_chip(FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=1, core=2))
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            yield from cc.flag_set(1, f, FlagValue(0, 7))  # mpb1: untouched
            yield from cc.flag_set(2, f, FlagValue(0, 7))  # mpb2: dropped

        run_spmd(chip, prog, core_ids=[0])
        assert f.peek(chip, 1) == FlagValue(0, 7)
        assert f.peek(chip, 2) == FlagValue(0, 0)

    def test_profile_counts_sites_with_empty_plan(self):
        chip = faulty_chip()
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            yield from cc.flag_set(1, f, FlagValue(0, 1))
            yield from cc.flag_set(1, f, FlagValue(0, 2))

        run_spmd(chip, prog, core_ids=[0])
        profile = chip.faults.profile()
        assert profile["flag_write"] == 2
        assert profile["flag_write@core1"] == 2
        assert chip.faults.n_injected == 0


class TestEachFaultKind:
    def test_drop_flag_write_leaves_flag_and_watchers_untouched(self):
        chip = faulty_chip(FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=1))
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            yield from cc.flag_set(1, f, FlagValue(3, 9))

        run_spmd(chip, prog, core_ids=[0])
        assert f.peek(chip, 1) == FlagValue(0, 0)
        assert chip.faults.n_injected == 1

    def test_corrupt_flag_write_inverts_bytes(self):
        chip = faulty_chip(FaultSpec(FaultKind.CORRUPT_FLAG_WRITE, nth=1))
        comm = Comm(chip)
        f = comm.flag("t")
        value = FlagValue(3, 9)

        def prog(core):
            cc = comm.attach(core)
            yield from cc.flag_set(1, f, value)

        run_spmd(chip, prog, core_ids=[0])
        got = chip.mpbs[1].read_bytes(f.region.offset, 32)
        assert got == bytes(b ^ 0xFF for b in value.encode())
        assert f.peek(chip, 1) != value

    def test_drop_data_write_loses_the_put(self):
        chip = faulty_chip(FaultSpec(FaultKind.DROP_DATA_WRITE, nth=1))
        comm = Comm(chip)

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(64)
            src.write(bytes(range(64)))
            yield from cc.put(1, 0, src, 64)

        run_spmd(chip, prog, core_ids=[0])
        assert chip.mpbs[1].read_bytes(0, 64) == bytes(64)
        assert chip.faults.n_injected == 1

    def _putter(self, chip, comm):
        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(64)
            src.write(bytes(range(64)))
            yield from cc.put(1, 0, src, 64)

        return run_spmd(chip, prog, core_ids=[0]).makespan

    def test_link_stall_delays_the_transaction(self):
        plain = SccChip(SccConfig())
        base = self._putter(plain, Comm(plain))
        chip = faulty_chip(
            FaultSpec(FaultKind.LINK_STALL, nth=1, duration=500.0)
        )
        stalled = self._putter(chip, Comm(chip))
        assert stalled == pytest.approx(base + 500.0)

    def test_core_pause_adds_duration_once(self):
        plain = SccChip(SccConfig())
        base = self._putter(plain, Comm(plain))
        chip = faulty_chip(
            FaultSpec(FaultKind.CORE_PAUSE, nth=1, core=0, duration=250.0)
        )
        paused = self._putter(chip, Comm(chip))
        assert paused == pytest.approx(base + 250.0)

    def test_core_crash_kills_every_later_op(self):
        chip = faulty_chip(FaultSpec(FaultKind.CORE_CRASH, nth=1, core=0))
        comm = Comm(chip)

        def prog(core):
            cc = comm.attach(core)
            try:
                yield core.compute(1.0)
            except FaultInjected as exc:
                assert exc.site == "core0"
                return "crashed"
            return "alive"

        res = run_spmd(chip, prog, core_ids=[0])
        assert res.values == ("crashed",)
        assert chip.faults.is_dead(0)
        with pytest.raises(FaultInjected):
            chip.faults.core_op(0)  # stays dead

    def test_raw_and_sourceless_writes_are_never_faulted(self):
        chip = faulty_chip(FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=1))
        chip.mpbs[1].write_bytes(0, b"\x07" * 32)  # raw init write
        assert chip.mpbs[1].read_bytes(0, 32) == b"\x07" * 32
        assert chip.faults.n_injected == 0


class TestFaultTracing:
    def test_injection_and_recovery_emit_trace_records(self):
        tracer = Tracer(enabled=True)
        chip = faulty_chip(
            FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=1), tracer=tracer
        )
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            yield from cc.flag_set_acked(1, f, FlagValue(0, 5))

        run_spmd(chip, prog, core_ids=[0])
        assert f.peek(chip, 1) == FlagValue(0, 5)  # the retry landed
        injected = tracer.of_kind("fault.injected")
        recovered = tracer.of_kind("fault.recovered")
        assert len(injected) == 1 and injected[0].detail["fault"] == "drop_flag_write"
        assert len(recovered) == 1
        assert chip.faults.n_recovered == 1
        assert str(chip.faults.injected[0])  # records render

    def test_injection_record_fields(self):
        rec = InjectionRecord(
            1.5, FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=2), "mpb1@0"
        )
        assert "drop_flag_write" in str(rec) and "mpb1@0" in str(rec)


class TestKernelDetectors:
    def test_deadlock_message_names_event_and_time(self):
        sim = Simulator()
        ev = sim.event(name="never.signal")

        def stuck():
            yield sim.timeout(2.5)
            yield ev

        sim.process(stuck(), name="stucky")
        with pytest.raises(DeadlockError) as ei:
            sim.run()
        msg = str(ei.value)
        assert "stucky" in msg and "never.signal" in msg and "2.5" in msg
        assert ei.value.stuck[0][0] == "stucky"
        assert ei.value.sim_time == pytest.approx(2.5)

    def test_watchdog_throws_into_stuck_process(self):
        sim = Simulator()
        ev = sim.event(name="never.signal")

        def stuck():
            try:
                yield ev
            except WatchdogError as exc:
                return ("caught", exc.idle_for)
            return "unreachable"

        proc = sim.process(stuck(), name="stucky")
        sim.start_watchdog(10.0)
        sim.run()
        kind, idle = proc.value
        assert kind == "caught" and idle >= 10.0

    def test_watchdog_is_silent_on_live_runs(self):
        sim = Simulator()

        def busy():
            for _ in range(5):
                yield sim.timeout(1.0)
            return "done"

        proc = sim.process(busy(), name="busy")
        sim.start_watchdog(10.0)
        sim.run()
        assert proc.value == "done"

    def test_wait_flags_poll_budget_times_out(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            yield from cc.wait_flags(
                [f], lambda v: v[0].seq >= 1, timeout=50.0, site="test.wait"
            )

        with pytest.raises(SimError) as ei:
            run_spmd(chip, prog, core_ids=[0])
        assert isinstance(ei.value.__cause__, SimTimeoutError)
        assert ei.value.__cause__.site == "test.wait"

    def test_get_acked_refetches_a_dropped_own_mpb_deposit(self):
        # The get's deposit into the caller's own MPB is the 2nd data
        # write overall (1st is the remote put that seeds the source).
        chip = faulty_chip(FaultSpec(FaultKind.DROP_DATA_WRITE, nth=2))
        comm = Comm(chip)
        payload = bytes(range(64))

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(64)
            src.write(payload)
            yield from cc.put(1, 0, src, 64)
            yield from cc.get_acked(1, 0, 128, 64)  # into own MPB @ 128

        run_spmd(chip, prog, core_ids=[0])
        assert chip.mpbs[0].read_bytes(128, 64) == payload
        assert chip.faults.n_recovered == 1

    def test_put_acked_retries_through_a_dropped_data_write(self):
        chip = faulty_chip(FaultSpec(FaultKind.DROP_DATA_WRITE, nth=1))
        comm = Comm(chip)
        payload = bytes(range(64))

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(64)
            src.write(payload)
            yield from cc.put_acked(1, 0, src, 64)

        run_spmd(chip, prog, core_ids=[0])
        assert chip.mpbs[1].read_bytes(0, 64) == payload
        assert chip.faults.n_recovered == 1


class TestNewFaultKinds:
    def test_corrupt_data_write_inverts_the_payload(self):
        chip = faulty_chip(FaultSpec(FaultKind.CORRUPT_DATA_WRITE, nth=1))
        comm = Comm(chip)
        payload = bytes(range(64))

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(64)
            src.write(payload)
            yield from cc.put(1, 0, src, 64)

        run_spmd(chip, prog, core_ids=[0])
        assert chip.mpbs[1].read_bytes(0, 64) == bytes(
            b ^ 0xFF for b in payload
        )
        assert chip.faults.n_injected == 1

    def test_link_down_window_swallows_a_burst_of_writes(self):
        # Window opens at core 0's 1st MPB transaction, so that same
        # put's write -- and everything to or from core 0 until the
        # window closes -- vanishes.  Later writes go through.
        chip = faulty_chip(
            FaultSpec(FaultKind.LINK_DOWN, nth=1, core=0, duration=200.0)
        )
        comm = Comm(chip)
        payload = bytes(range(64))

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(64)
            src.write(payload)
            yield from cc.put(1, 0, src, 64)  # inside the window: lost
            assert chip.mpbs[1].read_bytes(0, 64) == bytes(64)
            yield core.compute(300.0)  # wait out the window
            yield from cc.put(1, 0, src, 64)  # delivered

        run_spmd(chip, prog, core_ids=[0])
        assert chip.mpbs[1].read_bytes(0, 64) == payload
        assert chip.faults.burst_dropped >= 1
        assert chip.faults.n_injected == 1  # the window itself, once
        assert "link-down bursts" in chip.faults.timeline_text()

    def test_link_down_drops_writes_toward_the_victim_too(self):
        # nth counts the *victim's* transactions: core 1's 1st MPB access
        # opens its window, after which core 0's writes *to* core 1 are
        # swallowed as well -- a correlated burst, not a single drop.
        chip = faulty_chip(
            FaultSpec(FaultKind.LINK_DOWN, nth=1, core=1, duration=500.0)
        )
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            if core.id == 1:
                src = cc.alloc(64)
                src.write(b"\x01" * 64)
                yield from cc.put(2, 0, src, 64)  # opens + eats this
            else:
                yield core.compute(50.0)  # let core 1 open the window
                yield from cc.flag_set(1, f, FlagValue(0, 9))  # eaten

        run_spmd(chip, prog, core_ids=[0, 1])
        assert chip.mpbs[2].read_bytes(0, 64) == bytes(64)
        assert f.peek(chip, 1) == FlagValue(0, 0)
        assert chip.faults.burst_dropped >= 2


class TestSustainedFaultKinds:
    """FLAPPING_LINK / CONGESTION_STORM / REPEATED_CRASH: regimes that
    keep firing for a window rather than a single point fault."""

    def test_sustained_spec_validation(self):
        with pytest.raises(ValueError):  # needs a duty cycle
            FaultSpec(
                FaultKind.FLAPPING_LINK, core=0, duration=10.0, period=5.0
            )
        with pytest.raises(ValueError):  # duty must be strictly inside (0, 1)
            FaultSpec(
                FaultKind.FLAPPING_LINK, core=0, duration=10.0, period=5.0,
                duty=1.0,
            )
        with pytest.raises(ValueError):  # cycle longer than the window
            FaultSpec(
                FaultKind.FLAPPING_LINK, core=0, duration=5.0, period=10.0,
                duty=0.5,
            )
        with pytest.raises(ValueError):  # needs a crash count
            FaultSpec(FaultKind.REPEATED_CRASH, core=0, period=100.0)
        with pytest.raises(ValueError):  # needs a per-access stall
            FaultSpec(FaultKind.CONGESTION_STORM, duration=100.0)
        with pytest.raises(ValueError):  # point kinds reject regime knobs
            FaultSpec(FaultKind.CORE_CRASH, core=0, period=5.0)

    def test_flapping_link_gates_writes_by_duty_cycle(self):
        # Core 0's 1st MPB access arms a 50% duty cycle: down for the
        # first half of each 100k-us period, over a 400k-us window.
        chip = faulty_chip(
            FaultSpec(
                FaultKind.FLAPPING_LINK, nth=1, core=0,
                duration=400_000.0, period=100_000.0, duty=0.5,
            )
        )
        comm = Comm(chip)
        p1, p2, p3, p4 = (bytes([i]) * 64 for i in (1, 2, 3, 4))

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(64)
            src.write(p1)
            yield from cc.put(1, 0, src, 64)  # arms; down phase: lost
            assert chip.mpbs[1].read_bytes(0, 64) == bytes(64)
            yield core.compute(60_000.0)  # into the up half-cycle
            src.write(p2)
            yield from cc.put(1, 0, src, 64)  # delivered
            assert chip.mpbs[1].read_bytes(0, 64) == p2
            yield core.compute(40_000.0)  # next cycle's down phase
            src.write(p3)
            yield from cc.put(1, 0, src, 64)  # lost again
            assert chip.mpbs[1].read_bytes(0, 64) == p2
            yield core.compute(350_000.0)  # past the whole window
            src.write(p4)
            yield from cc.put(1, 0, src, 64)  # flap expired: delivered

        run_spmd(chip, prog, core_ids=[0])
        assert chip.mpbs[1].read_bytes(0, 64) == p4
        assert chip.faults.n_injected == 1  # the regime itself, once
        assert chip.faults.burst_dropped >= 2

    def _putter_with_gap(self, chip, comm):
        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(64)
            src.write(bytes(range(64)))
            yield from cc.put(1, 0, src, 64)
            yield from cc.put(2, 0, src, 64)

        return run_spmd(chip, prog, core_ids=[0]).makespan

    def test_congestion_storm_stalls_every_access_in_window(self):
        plain = SccChip(SccConfig())
        base = self._putter_with_gap(plain, Comm(plain))
        chip = faulty_chip(
            FaultSpec(
                FaultKind.CONGESTION_STORM, nth=1,
                duration=100_000.0, period=250.0,
            )
        )
        stormy = self._putter_with_gap(chip, Comm(chip))
        # Both puts' MPB accesses fall inside the window; each pays the
        # per-access stall, and nothing is dropped.
        assert stormy == pytest.approx(base + 2 * 250.0)
        assert chip.mpbs[1].read_bytes(0, 64) == bytes(range(64))
        assert chip.mpbs[2].read_bytes(0, 64) == bytes(range(64))

    def test_repeated_crash_churns_through_cores(self):
        # Core 0 dies at its 1st timed primitive; every 450 us after, the
        # next live core to execute one dies too, three crashes in all.
        chip = faulty_chip(
            FaultSpec(
                FaultKind.REPEATED_CRASH, nth=1, core=0,
                period=450.0, cycles=3,
            )
        )
        comm = Comm(chip)

        def prog(core):
            comm.attach(core)
            try:
                for _ in range(50):
                    yield core.compute(100.0)
            except FaultInjected:
                return "crashed"
            return "alive"

        res = run_spmd(chip, prog, core_ids=[0, 1, 2, 3])
        assert res.values.count("crashed") == 3
        assert res.values.count("alive") == 1
        assert res.values[0] == "crashed"  # the named first victim
        assert chip.faults.n_injected == 3
        assert sum(chip.faults.is_dead(c) for c in range(4)) == 3

    def test_repeated_crash_single_cycle_is_one_crash(self):
        chip = faulty_chip(
            FaultSpec(
                FaultKind.REPEATED_CRASH, nth=1, core=0,
                period=450.0, cycles=1,
            )
        )
        comm = Comm(chip)

        def prog(core):
            comm.attach(core)
            try:
                for _ in range(20):
                    yield core.compute(100.0)
            except FaultInjected:
                return "crashed"
            return "alive"

        res = run_spmd(chip, prog, core_ids=[0, 1])
        assert res.values == ("crashed", "alive")
        assert chip.faults.n_injected == 1


class TestPlanEdgeCases:
    def test_nth_beyond_candidate_count_never_fires(self):
        chip = faulty_chip(FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=10**6))
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            yield from cc.flag_set(1, f, FlagValue(0, 1))
            yield from cc.flag_set(1, f, FlagValue(0, 2))

        run_spmd(chip, prog, core_ids=[0])
        assert f.peek(chip, 1) == FlagValue(0, 2)  # everything delivered
        assert chip.faults.n_injected == 0

    def test_overlapping_specs_on_the_same_site_are_rejected(self):
        with pytest.raises(ValueError, match="overlapping fault specs"):
            FaultPlan((
                FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=3),
                FaultSpec(FaultKind.CORRUPT_FLAG_WRITE, nth=3),
            ))
        with pytest.raises(ValueError, match="overlapping fault specs"):
            FaultPlan((
                FaultSpec(FaultKind.CORE_CRASH, core=5, nth=2),
                FaultSpec(FaultKind.CORE_PAUSE, core=5, nth=2, duration=1.0),
            ))

    def test_distinct_sites_with_equal_nth_are_allowed(self):
        # Same nth, different counter category / core scope: no overlap.
        plan = FaultPlan((
            FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=3),
            FaultSpec(FaultKind.DROP_DATA_WRITE, nth=3),
            FaultSpec(FaultKind.CORE_CRASH, core=1, nth=3),
            FaultSpec(FaultKind.CORE_CRASH, core=2, nth=3),
            FaultSpec(FaultKind.DROP_FLAG_WRITE, core=1, nth=3),
        ))
        assert len(plan) == 5

    def test_plan_rejects_non_spec_members(self):
        with pytest.raises(TypeError):
            FaultPlan(("drop_flag_write",))

    def test_new_kind_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.LINK_DOWN, core=1)  # needs a duration
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.LINK_DOWN, duration=5.0)  # needs a core
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.CORE_PAUSE, duration=5.0)  # needs a core
        assert (
            FaultSpec(FaultKind.CORRUPT_DATA_WRITE).category == "data_write"
        )
        assert (
            FaultSpec(FaultKind.LINK_DOWN, core=1, duration=5.0).category
            == "mpb_access"
        )


class TestAdversaryPlanValidation:
    """The Byzantine kinds (EQUIVOCATE / FORGE_FLAG_VALUE /
    LIE_IN_QUORUM) name a compromised *member*, not an anonymous
    operation stream, so their plans face extra structural checks."""

    def test_adversary_kind_requires_a_core(self):
        for kind in (FaultKind.FORGE_FLAG_VALUE, FaultKind.LIE_IN_QUORUM):
            with pytest.raises(ValueError, match="explicit adversary core"):
                FaultSpec(kind)
        with pytest.raises(ValueError, match="explicit adversary core"):
            FaultSpec(FaultKind.EQUIVOCATE, duration=1)

    def test_equivocate_requires_a_staging_window(self):
        with pytest.raises(ValueError, match="window of >= 1 staging"):
            FaultSpec(FaultKind.EQUIVOCATE, core=0)  # duration 0 = no window

    def test_adversary_core_outside_communicator_rejected(self):
        spec = FaultSpec(FaultKind.LIE_IN_QUORUM, core=19)
        with pytest.raises(ValueError, match="outside the 12-core"):
            FaultPlan((spec,), num_cores=12)
        # The same plan is fine when the communicator is big enough (or
        # its size is unknown at plan-build time).
        assert len(FaultPlan((spec,), num_cores=24)) == 1
        assert len(FaultPlan((spec,))) == 1

    def test_overlapping_equivocation_windows_rejected(self):
        with pytest.raises(
            ValueError, match="overlapping equivocation windows"
        ):
            FaultPlan((
                FaultSpec(FaultKind.EQUIVOCATE, core=0, nth=1, duration=3),
                FaultSpec(FaultKind.EQUIVOCATE, core=0, nth=2, duration=2),
            ))

    def test_disjoint_equivocation_windows_allowed(self):
        plan = FaultPlan((
            FaultSpec(FaultKind.EQUIVOCATE, core=0, nth=1, duration=2),
            FaultSpec(FaultKind.EQUIVOCATE, core=0, nth=3, duration=1),
            FaultSpec(FaultKind.EQUIVOCATE, core=1, nth=1, duration=4),
        ))
        assert len(plan) == 3

    def test_non_adversary_cores_are_not_range_checked(self):
        # num_cores only constrains adversary identity; a crash victim
        # outside the communicator is legal (and simply never fires).
        plan = FaultPlan(
            (FaultSpec(FaultKind.CORE_CRASH, core=40),), num_cores=12
        )
        assert len(plan) == 1


class TestTimelineInErrors:
    def test_timeout_error_carries_the_fault_timeline(self):
        chip = faulty_chip(FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=1))
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            yield from cc.flag_set(1, f, FlagValue(0, 1))  # dropped
            yield from cc.wait_flags(
                [f], lambda v: v[0].seq >= 1, timeout=50.0, site="test.wait"
            )

        with pytest.raises(SimError) as ei:
            run_spmd(chip, prog, core_ids=[1])
        msg = str(ei.value.__cause__)
        assert "fault timeline:" in msg and "drop_flag_write" in msg

    def test_deadlock_error_carries_the_fault_timeline(self):
        chip = faulty_chip(FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=1))
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            if core.id == 0:
                yield from cc.flag_set(1, f, FlagValue(0, 1))  # dropped
            else:
                yield from cc.wait_flags([f], lambda v: v[0].seq >= 1)

        with pytest.raises(DeadlockError) as ei:
            run_spmd(chip, prog, core_ids=[0, 1])
        msg = str(ei.value)
        assert "fault timeline:" in msg and "drop_flag_write" in msg

    def test_fault_free_errors_stay_clean(self):
        chip = faulty_chip()  # injector attached, nothing injected
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            yield from cc.wait_flags([f], lambda v: v[0].seq >= 1)

        with pytest.raises(DeadlockError) as ei:
            run_spmd(chip, prog, core_ids=[0])
        assert "fault timeline:" not in str(ei.value)


class TestCampaignKnobs:
    def test_parse_kinds_new_aliases(self):
        from repro.bench.faultcampaign import parse_kinds

        assert parse_kinds(["corrupt_data", "link_down"]) == (
            FaultKind.CORRUPT_DATA_WRITE,
            FaultKind.LINK_DOWN,
        )
        assert parse_kinds(["flap", "churn", "storm"]) == (
            FaultKind.FLAPPING_LINK,
            FaultKind.REPEATED_CRASH,
            FaultKind.CONGESTION_STORM,
        )
        # The long names work too.
        assert parse_kinds(
            ["flapping_link", "repeated_crash", "congestion_storm"]
        ) == parse_kinds(["flap", "churn", "storm"])
        with pytest.raises(ValueError):
            parse_kinds(["bogus"])

    def test_campaign_knob_validation(self):
        from repro.bench import FaultCampaign

        with pytest.raises(ValueError):
            FaultCampaign(trials=1, faults_per_trial=0)
        with pytest.raises(ValueError):
            FaultCampaign(trials=1, crash_site="edge")
        with pytest.raises(ValueError):
            FaultCampaign(trials=1, link_down_duration=0.0)
        with pytest.raises(ValueError):
            FaultCampaign(trials=1, flap_duty=0.0)
        with pytest.raises(ValueError):
            FaultCampaign(trials=1, churn_cycles=0)
        with pytest.raises(ValueError):
            FaultCampaign(trials=1, storm_stall=0.0)

    def test_sustained_kind_trial_plans(self):
        from repro.bench import FaultCampaign
        from repro.bench.faultcampaign import parse_kinds

        campaign = FaultCampaign(
            trials=3,
            seed=7,
            kinds=parse_kinds(["flap", "churn", "storm"]),
            crash_site="leaf",
        )
        plans = campaign.trial_plans()
        assert plans == campaign.trial_plans()  # pure function of seed
        flap, churn, storm = (p.specs[0] for p in plans)
        assert flap.kind is FaultKind.FLAPPING_LINK
        assert flap.core is not None and flap.core != campaign.root
        assert flap.duration == campaign.flap_duration
        assert flap.period == campaign.flap_period
        assert flap.duty == campaign.flap_duty
        assert churn.kind is FaultKind.REPEATED_CRASH
        assert churn.period == campaign.churn_gap
        assert churn.cycles == campaign.churn_cycles
        assert storm.kind is FaultKind.CONGESTION_STORM
        assert storm.core is None  # chip-wide, keyed to an access number
        assert storm.duration == campaign.storm_duration
        assert storm.period == campaign.storm_stall

    def test_crash_site_choices_cover_the_root(self):
        from repro.bench import FaultCampaign
        from repro.faults import CRASH_SITES

        assert CRASH_SITES == ("leaf", "interior", "any", "root")
        # Every advertised choice is accepted by the campaign validator.
        for site in CRASH_SITES:
            FaultCampaign(trials=1, crash_site=site)

    def test_root_crash_site_always_targets_the_source(self):
        from repro.bench import FaultCampaign

        campaign = FaultCampaign(
            trials=8,
            seed=3,
            kinds=(FaultKind.CORE_CRASH,),
            crash_site="root",
            mid_stream=True,
        )
        plans = campaign.trial_plans()
        assert plans == campaign.trial_plans()  # pure function of seed
        assert len(plans) == 8
        for plan in plans:
            (spec,) = plan.specs
            assert spec.kind is FaultKind.CORE_CRASH
            assert spec.core == campaign.root
            assert spec.nth >= 1

    def test_multi_fault_trial_plans_are_reproducible_and_disjoint(self):
        from repro.bench import FaultCampaign

        campaign = FaultCampaign(
            trials=6,
            seed=11,
            kinds=(FaultKind.CORE_CRASH, FaultKind.CORRUPT_DATA_WRITE),
            faults_per_trial=2,
            crash_site="interior",
            mid_stream=True,
        )
        plans = campaign.trial_plans()
        assert plans == campaign.trial_plans()  # pure function of seed
        from repro.core import PropagationTree

        tree = PropagationTree(48, 7, 0)
        tree_interior = {r for r in range(1, 48) if tree.children_of(r)}
        for plan in plans:
            assert len(plan) == 2
            sites = {(s.category, s.core, s.nth) for s in plan}
            assert len(sites) == 2  # rejection sampling kept them disjoint
            kinds = {s.kind for s in plan}
            assert kinds == {
                FaultKind.CORE_CRASH, FaultKind.CORRUPT_DATA_WRITE
            }
            crash = next(s for s in plan if s.kind is FaultKind.CORE_CRASH)
            assert crash.core in tree_interior


class TestSeededDeterminism:
    def _trace_once(self, specs):
        tracer = Tracer(enabled=True)
        chip = faulty_chip(*specs, tracer=tracer)
        comm = Comm(chip)
        f = comm.flag("t")

        def prog(core):
            cc = comm.attach(core)
            for i in range(1, 4):
                yield from cc.flag_set_acked(
                    (core.id + 1) % 4, f, FlagValue(0, i)
                )
            yield from cc.wait_flags([f], lambda v: v[0].seq >= 3)

        run_spmd(chip, prog, core_ids=[0, 1, 2, 3])
        return "\n".join(str(r) for r in tracer.records)

    def test_same_plan_gives_byte_identical_trace(self):
        specs = (
            FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=3),
            FaultSpec(FaultKind.LINK_STALL, nth=5, duration=40.0),
        )
        assert self._trace_once(specs) == self._trace_once(specs)

    def test_different_plan_gives_different_trace(self):
        a = self._trace_once((FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=3),))
        b = self._trace_once((FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=4),))
        assert a != b
