"""Tests for private memory, MemRef and the L1 model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scc import L1Cache, SccChip, SccConfig
from repro.scc.memory import MemRef, PrivateMemory


@pytest.fixture()
def mem():
    return PrivateMemory(SccConfig(private_mem_bytes=1 << 20), owner=5)


class TestPrivateMemory:
    def test_alloc_is_cache_line_aligned(self, mem):
        a = mem.alloc(10)
        b = mem.alloc(10)
        assert a.offset % 32 == 0
        assert b.offset % 32 == 0
        assert b.offset >= a.offset + 10

    def test_allocations_do_not_overlap(self, mem):
        refs = [mem.alloc(n) for n in (1, 32, 33, 64, 100)]
        spans = sorted((r.offset, r.offset + r.nbytes) for r in refs)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_grows_on_demand(self, mem):
        assert mem.size == 0
        mem.alloc(1000)
        assert mem.size >= 1000

    def test_capacity_enforced(self):
        small = PrivateMemory(SccConfig(private_mem_bytes=128), owner=0)
        small.alloc(96)
        with pytest.raises(MemoryError):
            small.alloc(64)

    def test_negative_alloc_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.alloc(-1)

    def test_reset_releases_space(self):
        small = PrivateMemory(SccConfig(private_mem_bytes=128), owner=0)
        small.alloc(128)
        small.reset()
        small.alloc(128)  # no MemoryError


class TestMemRef:
    def test_write_read_roundtrip(self, mem):
        ref = mem.alloc(100)
        ref.write(bytes(range(100)))
        assert ref.read() == bytes(range(100))

    def test_sub_ref_views_parent(self, mem):
        ref = mem.alloc(100)
        ref.write(bytes(range(100)))
        sub = ref.sub(10, 20)
        assert sub.read() == bytes(range(10, 30))
        sub.write(b"\xff" * 20)
        assert ref.read()[10:30] == b"\xff" * 20

    def test_sub_out_of_range(self, mem):
        ref = mem.alloc(100)
        with pytest.raises(IndexError):
            ref.sub(90, 20)
        with pytest.raises(IndexError):
            ref.sub(-1, 5)

    def test_oversized_write_rejected(self, mem):
        ref = mem.alloc(10)
        with pytest.raises(IndexError):
            ref.write(bytes(11))

    def test_line_addrs_cover_buffer(self, mem):
        ref = mem.alloc(100)  # offset aligned; 100 bytes -> 4 lines
        lines = list(ref.line_addrs())
        assert len(lines) == 4
        assert lines[0] == ref.offset // 32

    def test_empty_ref_has_no_lines(self, mem):
        ref = mem.alloc(0)
        assert list(ref.line_addrs()) == []

    def test_owner_propagates(self, mem):
        assert mem.alloc(8).owner == 5


class TestL1Cache:
    def test_miss_then_hit(self):
        l1 = L1Cache(4)
        assert not l1.access(10)
        assert l1.access(10)
        assert l1.hits == 1 and l1.misses == 1

    def test_lru_eviction(self):
        l1 = L1Cache(2)
        l1.access(1)
        l1.access(2)
        l1.access(3)  # evicts 1
        assert not l1.contains(1)
        assert l1.contains(2) and l1.contains(3)

    def test_access_refreshes_recency(self):
        l1 = L1Cache(2)
        l1.access(1)
        l1.access(2)
        l1.access(1)  # 2 is now LRU
        l1.access(3)
        assert l1.contains(1)
        assert not l1.contains(2)

    def test_invalidate(self):
        l1 = L1Cache(4)
        l1.access(1)
        l1.invalidate()
        assert len(l1) == 0
        assert not l1.contains(1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            L1Cache(0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    def test_property_size_bounded_and_recent_present(self, addrs):
        l1 = L1Cache(8)
        for a in addrs:
            l1.access(a)
            assert len(l1) <= 8
        assert l1.contains(addrs[-1])


class TestCoreMemoryOps:
    def test_mem_read_uses_l1_on_reread(self):
        chip = SccChip(SccConfig())
        core = chip.cores[0]
        ref = core.mem.alloc(320)  # 10 lines

        def prog():
            t0 = chip.sim.now
            yield from core.mem_read(ref)
            cold = chip.sim.now - t0
            t0 = chip.sim.now
            yield from core.mem_read(ref)
            warm = chip.sim.now - t0
            return cold, warm

        p = chip.sim.process(prog())
        chip.sim.run()
        cold, warm = p.value
        assert warm < cold / 5  # L1 hits are nearly free

    def test_mem_write_allocates_into_l1(self):
        chip = SccChip(SccConfig())
        core = chip.cores[0]
        ref = core.mem.alloc(320)

        def prog():
            yield from core.mem_write(ref)
            t0 = chip.sim.now
            yield from core.mem_read(ref)
            return chip.sim.now - t0

        p = chip.sim.process(prog())
        chip.sim.run()
        assert p.value == pytest.approx(10 * chip.config.t_l1_hit)

    def test_l1_disabled_by_config(self):
        chip = SccChip(SccConfig(model_l1=False))
        core = chip.cores[0]
        assert core.l1 is None
        ref = core.mem.alloc(64)

        def prog():
            yield from core.mem_read(ref)
            t0 = chip.sim.now
            yield from core.mem_read(ref)
            return chip.sim.now - t0

        p = chip.sim.process(prog())
        chip.sim.run()
        assert p.value == pytest.approx(2 * core.mem_read_line_cost())

    def test_cross_core_memory_access_rejected(self):
        chip = SccChip(SccConfig())
        ref = chip.cores[1].mem.alloc(32)

        def prog():
            yield from chip.cores[0].mem_read(ref)

        chip.sim.process(prog())
        with pytest.raises(Exception):
            chip.sim.run()
