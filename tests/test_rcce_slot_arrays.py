"""Tests for per-partner flag slot arrays (incl. hypothesis properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rcce import Comm
from repro.rcce.flags import FlagSlotArray
from repro.scc import SccChip, SccConfig, run_spmd


def make_array(nslots=48, lines=None):
    chip = SccChip(SccConfig())
    comm = Comm(chip)
    lines = lines if lines is not None else FlagSlotArray.lines_needed(nslots)
    arr = FlagSlotArray(comm.layout.alloc_lines(lines), nslots, name="t")
    return chip, comm, arr


class TestLayout:
    def test_lines_needed(self):
        assert FlagSlotArray.lines_needed(1) == 1
        assert FlagSlotArray.lines_needed(16) == 1
        assert FlagSlotArray.lines_needed(17) == 2
        assert FlagSlotArray.lines_needed(48) == 3

    def test_region_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_array(nslots=48, lines=2)

    def test_slot_bounds(self):
        _, _, arr = make_array(8)
        with pytest.raises(IndexError):
            arr.slot_offset(8)
        with pytest.raises(IndexError):
            arr.slot_offset(-1)

    def test_slots_do_not_overlap(self):
        _, _, arr = make_array(48)
        offsets = [arr.slot_offset(i) for i in range(48)]
        assert len(set(offsets)) == 48
        for a, b in zip(offsets, offsets[1:]):
            assert b - a == FlagSlotArray.SLOT_BYTES


class TestReadWrite:
    def test_write_visible_at_owner_only(self):
        chip, comm, arr = make_array()

        def program(core):
            yield from arr.write(core, owner_core=7, slot=3, value=99)

        run_spmd(chip, program, core_ids=[0])
        assert arr.peek(chip, 7, 3) == 99
        assert arr.peek(chip, 7, 2) == 0
        assert arr.peek(chip, 6, 3) == 0

    def test_value_bounds(self):
        chip, comm, arr = make_array()

        def program(core):
            yield from arr.write(core, 1, 0, 0x10000)

        with pytest.raises(Exception):
            run_spmd(chip, program, core_ids=[0])

    def test_neighbouring_writers_do_not_clobber(self):
        """Slots sharing one cache line keep independent values -- the
        bit-packed-flags property the two-sided layer relies on."""
        chip, comm, arr = make_array()

        def program(core):
            # Each writer core w writes slot w of core 40's array.
            yield from arr.write(core, 40, core.id, core.id + 1)

        run_spmd(chip, program, core_ids=list(range(16)))  # slots share line 0
        for w in range(16):
            assert arr.peek(chip, 40, w) == w + 1

    def test_wait_at_least_wakes_on_slot_write(self):
        chip, comm, arr = make_array()
        woke = {}

        def waiter(core):
            got = yield from arr.wait_at_least(core, slot=5, value=3)
            woke["value"] = got
            woke["time"] = chip.now

        def setter(core):
            yield core.compute(4.0)
            yield from arr.write(core, 0, 5, 2)  # not enough
            yield core.compute(4.0)
            yield from arr.write(core, 0, 5, 3)  # satisfies

        run_spmd(
            chip,
            lambda c: waiter(c) if c.id == 0 else setter(c),
            core_ids=[0, 1],
        )
        assert woke["value"] >= 3
        assert woke["time"] > 8.0

    def test_wait_tolerates_spurious_same_line_writes(self):
        """A write to a *different* slot of the same line wakes the
        watcher; the waiter must re-check and keep waiting."""
        chip, comm, arr = make_array()
        woke = {}

        def waiter(core):
            yield from arr.wait_at_least(core, slot=0, value=1)
            woke["time"] = chip.now

        def setter(core):
            yield core.compute(2.0)
            yield from arr.write(core, 0, 1, 7)  # same line, wrong slot
            yield core.compute(6.0)
            yield from arr.write(core, 0, 0, 1)

        run_spmd(
            chip,
            lambda c: waiter(c) if c.id == 0 else setter(c),
            core_ids=[0, 1],
        )
        assert woke["time"] > 8.0


@settings(max_examples=30, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 0xFFFF)),
        min_size=1,
        max_size=30,
    )
)
def test_property_slots_hold_last_write(writes):
    chip, comm, arr = make_array(16)

    def program(core):
        for slot, value in writes:
            yield from arr.write(core, 1, slot, value)

    run_spmd(chip, program, core_ids=[0])
    expected = {}
    for slot, value in writes:
        expected[slot] = value
    for slot, value in expected.items():
        assert arr.peek(chip, 1, slot) == value
