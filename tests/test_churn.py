"""Sustained-regime churn campaign (:mod:`repro.bench.churn`).

Tier-1 keeps the fast pieces: plan determinism, config coherence and a
two-trial adaptive smoke.  The adaptive-vs-fixed acceptance slice runs
under ``-m faults`` (the full 100-trial campaign lives in ``make churn``).
"""

import pytest

from repro.bench import ChurnCampaign, ChurnResult, ChurnTrial
from repro.bench.churn import CHURN_OUTCOMES
from repro.faults import FaultKind, FaultPlan


class TestChurnPlans:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnCampaign(trials=0)
        with pytest.raises(ValueError):
            ChurnCampaign(broadcasts=0)
        with pytest.raises(ValueError):
            ChurnCampaign(flap_period=0.0)
        with pytest.raises(ValueError):
            ChurnCampaign(flap_duty=1.0)

    def test_trial_plans_deterministic_and_disjoint(self):
        campaign = ChurnCampaign(trials=4, seed=9, broadcasts=2)
        plans = campaign.trial_plans()
        assert plans == campaign.trial_plans()  # pure function of seed
        assert len(plans) == 4
        for plan in plans:
            kinds = [s.kind for s in plan.specs]
            assert kinds == [FaultKind.FLAPPING_LINK, FaultKind.CORE_CRASH]
            flap, crash = plan.specs
            # The flap victim outlives the plan; the crash strikes a
            # *different* non-root member, so any eviction of the flap
            # victim is a false eviction by construction.
            assert flap.core != crash.core
            assert campaign.root not in (flap.core, crash.core)
            assert flap.nth == 1  # continuously active from first access

    def test_crash_false_disarms_the_crash_leg(self):
        campaign = ChurnCampaign(trials=2, seed=5, crash=False)
        for plan in campaign.trial_plans():
            assert [s.kind for s in plan.specs] == [FaultKind.FLAPPING_LINK]


class TestChurnConfigCoherence:
    """The adaptive config is *derived* from the fault regime -- the
    suspicion floor must dominate every legal response lag."""

    def test_floor_covers_notify_wait_and_backoff(self):
        campaign = ChurnCampaign(trials=1)
        cfg = campaign.adaptive_member_config()
        pol = campaign._backoff()
        assert cfg.detector is not None
        assert cfg.detector.floor >= (
            campaign._notify_wait() + pol.max_total_pause()
            + campaign.flap_period
        )
        assert cfg.hb_timeout > cfg.detector.floor
        assert cfg.view_timeout >= 2.0 * cfg.hb_timeout
        # Coherence rule enforced by MembershipConfig itself: the
        # heartbeat deadline covers the paced retry schedule.
        assert cfg.hb_timeout > pol.max_total_pause()

    def test_notify_wait_covers_relay_backoff(self):
        campaign = ChurnCampaign(trials=1)
        # Commit relays over two paced hops for 48 cores at k=7.
        assert campaign._notify_wait() >= (
            2.0 * campaign._backoff().max_total_pause()
        )

    def test_fixed_config_is_the_legacy_default(self):
        campaign = ChurnCampaign(trials=1)
        cfg = campaign.fixed_member_config()
        assert cfg.detector is None
        assert cfg.hb_retry is None and cfg.view_retry is None


class TestChurnSmoke:
    def test_fault_free_trial_survives_everywhere(self):
        campaign = ChurnCampaign(trials=1, broadcasts=3, compare_fixed=False)
        trial = campaign.run_one(FaultPlan((), label="clean"), adaptive=True)
        assert trial.outcome == "survived"
        assert trial.completed == 3
        assert trial.n_false_evicted == 0

    def test_two_adaptive_trials_terminate_cleanly(self):
        campaign = ChurnCampaign(
            trials=2, seed=3, broadcasts=3, compare_fixed=False
        )
        result = campaign.run()
        assert isinstance(result, ChurnResult)
        assert result.termination_rate == 1.0
        assert result.n_false_evictions == 0
        for adaptive, fixed in result.trials:
            assert isinstance(adaptive, ChurnTrial)
            assert adaptive.outcome in CHURN_OUTCOMES
            assert fixed is None
        assert "adaptive termination rate: 100.0%" in result.summary()


@pytest.mark.faults
class TestChurnAcceptance:
    """A ten-trial slice of the acceptance campaign (``make churn`` runs
    the full hundred): every adaptive trial terminates cleanly with zero
    false evictions while the fixed-deadline leg false-evicts or stalls
    on at least one of the *same* plans."""

    def test_adaptive_survives_where_fixed_false_evicts(self):
        campaign = ChurnCampaign(trials=10, seed=1, broadcasts=10)
        result = campaign.run()
        assert result.termination_rate == 1.0
        assert result.n_false_evictions == 0
        assert result.n_i8_violations == 0
        for adaptive, _ in result.trials:
            assert adaptive.outcome in ("survived", "refused")
        assert result.fixed_failure_trials >= 1
