"""Tests for the benchmark harness itself."""

import os

import pytest

from repro.bench import (
    BcastSpec,
    concurrent_access,
    format_series,
    format_table,
    run_broadcast,
    sweep_broadcast,
    sweep_putget,
    write_csv,
)
from repro.bench.contention import contention_sweep
from repro.bench.microbench import core_at_mem_distance, core_at_mpb_distance
from repro.core import NotifyMode
from repro.model import TABLE_1, fitting
from repro.scc import SccChip, SccConfig


class TestBcastSpec:
    def test_labels(self):
        assert BcastSpec("oc", k=7).label == "OC-Bcast k=7"
        assert BcastSpec("binomial").label == "binomial"
        assert BcastSpec("scatter_allgather").label == "scatter-allgather"

    def test_invalid_algo(self):
        with pytest.raises(ValueError):
            BcastSpec("bogus")

    def test_spec_carries_oc_options(self):
        spec = BcastSpec("oc", k=3, num_buffers=1, notify_mode=NotifyMode.INTERRUPT)
        assert spec.k == 3 and spec.num_buffers == 1


class TestRunBroadcast:
    def test_latencies_and_verification(self):
        res = run_broadcast(BcastSpec("oc", k=7), 4 * 32, iters=3, warmup=1)
        assert len(res.latencies) == 3
        assert res.verified
        assert res.mean_latency > 0
        assert res.throughput_mb_s > 0
        assert res.cache_lines == 4

    def test_warmup_discarded(self):
        res = run_broadcast(BcastSpec("binomial"), 64, iters=2, warmup=2)
        assert len(res.latencies) == 2

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            run_broadcast(BcastSpec("oc"), 0)
        with pytest.raises(ValueError):
            run_broadcast(BcastSpec("oc"), 32, iters=0)

    def test_sweep_shape(self):
        out = sweep_broadcast(
            [BcastSpec("oc", k=7), BcastSpec("binomial")],
            [1, 4],
            iters=1,
            warmup=0,
        )
        assert set(out) == {"OC-Bcast k=7", "binomial"}
        assert len(out["binomial"]) == 2
        assert out["binomial"][0].cache_lines == 1


class TestMicrobench:
    def test_distance_helpers(self):
        chip = SccChip(SccConfig())
        for d in (1, 5, 9):
            c = core_at_mpb_distance(chip, 0, d)
            assert chip.mesh.core_distance(0, c) == d
        for d in (1, 4):
            c = core_at_mem_distance(chip, d)
            assert chip.mesh.mem_distance(c) == d
        with pytest.raises(ValueError):
            core_at_mpb_distance(chip, 0, 10)

    def test_sweep_feeds_fit_exactly(self):
        obs = sweep_putget(sizes=(1, 8), mpb_distances=(1, 9), mem_distances=(1, 4), iters=2)
        result = fitting.fit(obs)
        assert result.residual_rms < 1e-9
        for name, (_, _, rel) in result.compare(TABLE_1).items():
            assert rel < 1e-6, name


class TestContention:
    def test_result_statistics(self):
        r = concurrent_access("get", 4, 16, iters=4)
        assert r.n_cores == 4
        assert len(r.per_core_mean) == 4
        assert r.fastest <= r.mean <= r.slowest
        assert r.spread >= 1.0

    def test_sweep_counts(self):
        rows = contention_sweep("put", 1, counts=(1, 2), iters=3)
        assert [r.n_cores for r in rows] == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            concurrent_access("move", 4, 1)
        with pytest.raises(ValueError):
            concurrent_access("get", 0, 1)
        with pytest.raises(ValueError):
            concurrent_access("get", 48, 1)


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 20.25]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "20.25" in lines[-1]

    def test_format_series(self):
        text = format_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [3.0, 4.0]})
        assert "s1" in text and "s2" in text
        assert "4.00" in text

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "sub" / "out.csv")
        write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        assert os.path.exists(path)
        with open(path) as fh:
            content = fh.read()
        assert "a,b" in content and "3,4" in content


class TestOsagSpec:
    def test_osag_label_and_run(self):
        spec = BcastSpec("osag")
        assert spec.label == "one-sided s-ag"
        res = run_broadcast(spec, 96 * 32, iters=1, warmup=0)
        assert res.verified
        assert res.mean_latency > 0
