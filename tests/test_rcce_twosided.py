"""Tests for RCCE-style blocking send/recv."""

import pytest

from repro.rcce import Comm
from repro.rcce.twosided import RCCE_PAYLOAD_LINES, TwoSidedState
from repro.scc import SccChip, SccConfig, run_spmd


def make_world(**cfg):
    chip = SccChip(SccConfig(**cfg))
    return chip, Comm(chip)


def pair_transfer(chip, comm, nbytes, payload=None, chunks_cfg=None):
    payload = payload if payload is not None else bytes(i % 256 for i in range(nbytes))
    got = {}

    def program(core):
        cc = comm.attach(core)
        if cc.rank == 0:
            src = cc.alloc(nbytes)
            src.write(payload)
            yield from cc.send(1, src, nbytes)
        else:
            dst = cc.alloc(nbytes)
            yield from cc.recv(0, dst, nbytes)
            got["data"] = dst.read()

    run_spmd(chip, program, core_ids=[comm.core_of(0), comm.core_of(1)])
    return payload, got.get("data")


class TestBasicTransfer:
    def test_small_message(self):
        chip, comm = make_world()
        sent, got = pair_transfer(chip, comm, 100)
        assert got == sent

    def test_exact_payload_buffer_size(self):
        chip, comm = make_world()
        n = RCCE_PAYLOAD_LINES * 32
        sent, got = pair_transfer(chip, comm, n)
        assert got == sent

    def test_multi_chunk_message(self):
        chip, comm = make_world()
        n = RCCE_PAYLOAD_LINES * 32 * 3 + 17
        sent, got = pair_transfer(chip, comm, n)
        assert got == sent

    def test_zero_byte_message_synchronises(self):
        chip, comm = make_world()
        times = {}

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(0)
            if cc.rank == 0:
                yield core.compute(10.0)
                yield from cc.send(1, buf, 0)
            else:
                yield from cc.recv(0, buf, 0)
                times["recv_done"] = chip.now

        run_spmd(chip, program, core_ids=[0, 1])
        assert times["recv_done"] > 10.0

    def test_back_to_back_messages_reuse_flags(self):
        chip, comm = make_world()
        got = []

        def program(core):
            cc = comm.attach(core)
            for i in range(4):
                buf = cc.alloc(64)
                if cc.rank == 0:
                    buf.write(bytes([i]) * 64)
                    yield from cc.send(1, buf, 64)
                else:
                    yield from cc.recv(0, buf, 64)
                    got.append(buf.read())

        run_spmd(chip, program, core_ids=[0, 1])
        assert got == [bytes([i]) * 64 for i in range(4)]

    def test_bidirectional_pair(self):
        chip, comm = make_world()
        got = {}

        def program(core):
            cc = comm.attach(core)
            mine = cc.alloc(96)
            mine.write(bytes([cc.rank + 1]) * 96)
            theirs = cc.alloc(96)
            other = 1 - cc.rank
            if cc.rank == 0:
                yield from cc.send(other, mine, 96)
                yield from cc.recv(other, theirs, 96)
            else:
                yield from cc.recv(other, mine if False else theirs, 96)
                yield from cc.send(other, mine, 96)
            got[cc.rank] = theirs.read()

        run_spmd(chip, program, core_ids=[0, 1])
        assert got[0] == bytes([2]) * 96
        assert got[1] == bytes([1]) * 96


class TestConcurrentPartners:
    def test_many_concurrent_senders_to_one_receiver(self):
        """Per-partner slots admit any number of in-flight senders (the
        binomial-reduce fan-in that a single shared flag cannot support)."""
        chip, comm = make_world()
        senders = list(range(1, 9))
        got = {}

        def program(core):
            cc = comm.attach(core)
            if cc.rank == 0:
                for s in sorted(senders, reverse=True):  # out of arrival order
                    buf = cc.alloc(64)
                    yield from cc.recv(s, buf, 64)
                    got[s] = buf.read()
            else:
                buf = cc.alloc(64)
                buf.write(bytes([cc.rank]) * 64)
                yield from cc.send(0, buf, 64)

        run_spmd(chip, program, core_ids=[0, *senders])
        assert got == {s: bytes([s]) * 64 for s in senders}

    def test_interleaved_pairs_do_not_interfere(self):
        """Two overlapping transfers through one middle core (the
        scatter/allgather phase-overlap scenario)."""
        chip, comm = make_world()
        got = {}

        def program(core):
            cc = comm.attach(core)
            if cc.rank == 0:
                buf = cc.alloc(64)
                buf.write(b"A" * 64)
                yield core.compute(20.0)  # arrives long after rank 1's send
                yield from cc.send(2, buf, 64)
            elif cc.rank == 1:
                buf = cc.alloc(64)
                buf.write(b"B" * 64)
                yield from cc.send(2, buf, 64)
            else:
                b0 = cc.alloc(64)
                b1 = cc.alloc(64)
                yield from cc.recv(1, b1, 64)
                yield from cc.recv(0, b0, 64)
                got["b0"] = b0.read()
                got["b1"] = b1.read()

        run_spmd(chip, program, core_ids=[0, 1, 2])
        assert got["b0"] == b"A" * 64
        assert got["b1"] == b"B" * 64

    def test_sequence_space_guard(self):
        chip, comm = make_world()
        st = comm.twosided

        def program(core):
            yield from st.sent.write(core, 1, 0, 70000)

        with pytest.raises(Exception):
            run_spmd(chip, program, core_ids=[0])


class TestValidation:
    def test_send_to_self_rejected(self):
        chip, comm = make_world()

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(32)
            yield from cc.send(0, buf, 32)

        with pytest.raises(Exception):
            run_spmd(chip, program, core_ids=[0])

    def test_state_validation(self):
        chip, comm = make_world()
        with pytest.raises(ValueError):
            TwoSidedState(comm, payload_lines=0)


class TestTiming:
    def test_send_recv_cost_scales_with_levels_not_just_bytes(self):
        """The rendezvous sync cost is visible on tiny messages."""
        chip, comm = make_world()
        t = {}

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(32)
            t0 = chip.now
            if cc.rank == 0:
                yield from cc.send(1, buf, 32)
            else:
                yield from cc.recv(0, buf, 32)
            t[cc.rank] = chip.now - t0

        run_spmd(chip, program, core_ids=[0, 1])
        # Far more than the raw 1-line put+get (~1.3us): flags dominate.
        assert t[0] > 1.0
        assert t[1] > 1.0
