"""Determinism contract of the simulator fast path.

The event-coalescing optimisation (``SccConfig.exact_coalescing``) must be
*bit-identical* to the per-line EXACT loop -- same traces, same latencies,
contended or not, faults armed or not.  These tests run every workload
twice (coalescing on / off) and compare exactly; see docs/PERFORMANCE.md
for why equality (not approximate closeness) is the contract.
"""

import random
from typing import Generator

import pytest

from repro.bench import (
    BcastSpec,
    FaultCampaign,
    concurrent_access,
    run_broadcast,
    run_campaign_parallel,
    sweep_broadcast,
    sweep_broadcast_parallel,
)
from repro.bench.parallel import parallel_map
from repro.faults import FaultKind
from repro.rcce import Comm
from repro.scc import ContentionMode, SccChip, SccConfig, run_spmd
from repro.scc.config import CACHE_LINE
from repro.sim import Simulator, Tracer


def _exact_config(coalesce: bool, **overrides) -> SccConfig:
    return SccConfig(
        contention_mode=ContentionMode.EXACT,
        exact_coalescing=coalesce,
        **overrides,
    )


def _traced_broadcast(cfg: SccConfig, nbytes: int = 24 * CACHE_LINE):
    """One OC broadcast on a traced chip; returns (records, makespan)."""
    tracer = Tracer(enabled=True)
    chip = SccChip(cfg, tracer=tracer)
    comm = Comm(chip)
    bcast = BcastSpec("oc", k=7).build(comm)
    payload = bytes(range(256)) * (nbytes // 256 + 1)

    def program(core) -> Generator:
        cc = comm.attach(core)
        buf = cc.alloc(nbytes)
        if cc.rank == 0:
            buf.write(payload[:nbytes])
        yield from bcast(cc, 0, buf, nbytes)
        assert buf.read() == payload[:nbytes]
        return None

    res = run_spmd(chip, program)
    return tuple(tracer.records), res.end_time


class TestCoalescingBitIdentity:
    def test_uncontended_broadcast_traces_identical(self):
        on = _traced_broadcast(_exact_config(True))
        off = _traced_broadcast(_exact_config(False))
        assert on == off

    def test_uncontended_broadcast_with_jitter(self):
        on = _traced_broadcast(_exact_config(True, jitter=0.02))
        off = _traced_broadcast(_exact_config(False, jitter=0.02))
        assert on == off

    @pytest.mark.parametrize("nbytes", [CACHE_LINE, 7 * CACHE_LINE, 192 * CACHE_LINE])
    def test_broadcast_latencies_identical(self, nbytes):
        def latencies(coalesce):
            return run_broadcast(
                BcastSpec("oc", k=7), nbytes,
                config=_exact_config(coalesce), iters=2, warmup=1,
            ).latencies

        assert latencies(True) == latencies(False)

    @pytest.mark.parametrize("op,n_cores", [("get", 8), ("get", 24), ("put", 24)])
    def test_contended_figure4_identical(self, op, n_cores):
        """At and past the Figure 4 knee every access intrudes on someone's
        run -- the hardest case for the fall-back reconstruction."""
        def result(coalesce):
            res = concurrent_access(
                op, n_cores, 32 if op == "get" else 1,
                config=_exact_config(coalesce), iters=3,
            )
            return res.per_core_mean

        assert result(True) == result(False)

    @pytest.mark.parametrize(
        "kind", [FaultKind.DROP_FLAG_WRITE, FaultKind.LINK_STALL]
    )
    def test_fault_campaign_identical(self, kind):
        """Fault hooks fire outside the per-line loop, so armed plans must
        not perturb the coalesced schedule either."""
        def result(coalesce):
            return FaultCampaign(
                trials=3, seed=11, kinds=(kind,),
                nbytes=24 * CACHE_LINE,
                config=_exact_config(coalesce),
                compare_baseline=False,
            ).run()

        assert result(True) == result(False)


def _random_ab_cases(n=50, seed=0x5CC2012):
    """``n`` seeded random workload configurations for the A/B sweep.

    Geometry, algorithm, tuning and message size all vary; meshes stay
    small (4-24 cores) and messages short (<= 64 cache lines) so the
    whole sweep stays in tier-1 time.  The seed is fixed: the cases are
    random once, then stable forever (reproducible failures).
    """
    rng = random.Random(seed)
    cases = []
    for i in range(n):
        cols = rng.randint(1, 3)
        rows = rng.randint(2, 4)
        algo = rng.choice(["oc", "oc", "oc", "binomial", "scatter_allgather"])
        k = rng.choice([2, 3, 7, 12])
        chunk_lines = rng.choice([8, 16, 32, 96])
        num_buffers = rng.choice([2, 3])
        if num_buffers * chunk_lines + k + 1 > 256:  # must fit the MPB
            num_buffers = 2
        spec = BcastSpec(
            algo,
            k=k,
            chunk_lines=chunk_lines,
            num_buffers=num_buffers,
            notify_degree=rng.choice([1, 2, 3]),
            leaf_direct_to_memory=rng.random() < 0.25,
        )
        nbytes = rng.randint(1, 64 * CACHE_LINE)
        jitter = rng.choice([0.0, 0.0, 0.02, 0.05])
        cases.append(pytest.param(
            spec, nbytes, cols, rows, jitter,
            id=f"cfg{i:02d}-{algo}-{2 * cols * rows}cores",
        ))
    return cases


class TestRandomizedAbSweep:
    """Satellite of the bit-identity contract: 50 seeded random
    configurations, each run with ``exact_coalescing`` on and off, must
    produce byte-equal latencies.  The targeted tests above pick known
    hard spots; this sweep guards the configuration space between them."""

    @pytest.mark.parametrize("spec,nbytes,cols,rows,jitter", _random_ab_cases())
    def test_latencies_identical(self, spec, nbytes, cols, rows, jitter):
        def latencies(coalesce):
            cfg = _exact_config(
                coalesce, mesh_cols=cols, mesh_rows=rows, jitter=jitter
            )
            return run_broadcast(
                spec, nbytes, config=cfg, iters=1, warmup=0
            ).latencies

        assert latencies(True) == latencies(False)


class TestRunUntilDrain:
    def test_now_advances_to_until_when_heap_drains(self):
        sim = Simulator()

        def p():
            yield sim.timeout(3.0)

        sim.process(p())
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_now_stays_at_until_when_events_remain(self):
        sim = Simulator()

        def p():
            yield sim.timeout(3.0)
            yield sim.timeout(30.0)

        sim.process(p())
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0
        sim.run()
        assert sim.now == 33.0

    def test_empty_sim_run_until(self):
        sim = Simulator()
        assert sim.run(until=5.0) == 5.0
        assert sim.now == 5.0


class TestParallelRunner:
    def test_parallel_map_orders_results(self):
        assert parallel_map(_square, [3, 1, 2], jobs=2) == [9, 1, 4]
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]
        assert parallel_map(_square, [], jobs=4) == []

    def test_sweep_matches_serial(self):
        specs = [BcastSpec("oc", k=7), BcastSpec("binomial")]
        sizes = [1, 16]
        serial = sweep_broadcast(specs, sizes, iters=1, warmup=0)
        fanned = sweep_broadcast_parallel(specs, sizes, iters=1, warmup=0, jobs=2)
        assert serial == fanned

    def test_campaign_matches_serial(self):
        campaign = FaultCampaign(trials=4, seed=5, compare_baseline=False)
        serial = campaign.run()
        fanned = run_campaign_parallel(campaign, jobs=2)
        assert serial == fanned
        assert fanned.timeline  # first injected trial's timeline survived


def _square(x: int) -> int:
    return x * x
