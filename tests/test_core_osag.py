"""Tests for the one-sided scatter-allgather broadcast (Section 5.4)."""

import pytest

from repro.core import OsagBcast
from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd


def osag_roundtrip(P, nbytes, root=0, repeats=1, slice_lines=48, **cfg):
    chip = SccChip(SccConfig(**cfg))
    comm = Comm(chip, ranks=list(range(P)))
    osag = OsagBcast(comm, slice_lines=slice_lines)
    payloads = [
        bytes((i * 17 + rep + root) % 256 for i in range(nbytes))
        for rep in range(repeats)
    ]
    results = {rep: {} for rep in range(repeats)}

    def program(core):
        cc = comm.attach(core)
        for rep in range(repeats):
            buf = cc.alloc(nbytes)
            if cc.rank == root:
                buf.write(payloads[rep])
            yield from osag.bcast(cc, root, buf, nbytes)
            results[rep][cc.rank] = buf.read()

    res = run_spmd(chip, program, core_ids=list(range(P)))
    return payloads, results, res


class TestCorrectness:
    @pytest.mark.parametrize("P", [2, 3, 4, 5, 8, 16, 48])
    def test_rank_counts(self, P):
        sent, got, _ = osag_roundtrip(P, 777)
        assert all(got[0][r] == sent[0] for r in range(P))

    @pytest.mark.parametrize("root", [0, 3, 7])
    def test_roots(self, root):
        sent, got, _ = osag_roundtrip(8, 500, root=root)
        assert all(got[0][r] == sent[0] for r in range(8))

    def test_message_smaller_than_rank_count(self):
        sent, got, _ = osag_roundtrip(16, 5)
        assert all(got[0][r] == sent[0] for r in range(16))

    def test_single_byte(self):
        sent, got, _ = osag_roundtrip(8, 1)
        assert all(got[0][r] == sent[0] for r in range(8))

    def test_multi_segment_message(self):
        # > P * slice_lines * 32 bytes forces several segments.
        P, slice_lines = 8, 4
        nbytes = P * slice_lines * 32 * 3 + 57
        sent, got, _ = osag_roundtrip(P, nbytes, slice_lines=slice_lines)
        assert all(got[0][r] == sent[0] for r in range(P))

    def test_repeated_broadcasts(self):
        sent, got, _ = osag_roundtrip(8, 1200, repeats=3)
        for rep in range(3):
            assert all(got[rep][r] == sent[rep] for r in range(8))

    def test_repeated_with_changing_roots(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=list(range(8)))
        osag = OsagBcast(comm)
        outs = []

        def program(core):
            cc = comm.attach(core)
            for root in (0, 5, 2):
                buf = cc.alloc(300)
                if cc.rank == root:
                    buf.write(bytes([root + 1]) * 300)
                yield from osag.bcast(cc, root, buf, 300)
                if cc.rank == (root + 3) % 8:
                    outs.append(buf.read()[:1])

        run_spmd(chip, program, core_ids=list(range(8)))
        assert outs == [bytes([1]), bytes([6]), bytes([3])]

    def test_zero_bytes_noop(self):
        _, _, res = osag_roundtrip(8, 300)  # engine warm
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=list(range(8)))
        osag = OsagBcast(comm)

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(0)
            yield from osag.bcast(cc, 0, buf, 0)

        assert run_spmd(chip, program, core_ids=list(range(8))).makespan == 0.0


class TestPerformance:
    def test_beats_two_sided_scatter_allgather(self):
        """The point of Section 5.4's suggestion: lifting the allgather
        ring onto one-sided MPB forwarding removes off-chip round trips."""
        from repro.bench import BcastSpec, run_broadcast

        nbytes = 2048 * 32
        two_sided = run_broadcast(
            BcastSpec("scatter_allgather"), nbytes, iters=2, warmup=1
        )
        chip = SccChip(SccConfig())
        comm = Comm(chip)
        osag = OsagBcast(comm)
        payload = bytes(i % 256 for i in range(nbytes))
        lat = {}

        def program(core):
            cc = comm.attach(core)
            for i in range(3):
                buf = cc.alloc(nbytes)
                if cc.rank == 0:
                    buf.write(payload)
                t0 = chip.now
                yield from osag.bcast(cc, 0, buf, nbytes)
                lat.setdefault(i, {})[cc.rank] = chip.now - t0
                assert buf.read() == payload

        run_spmd(chip, program)
        osag_latency = max(lat[2].values())
        assert osag_latency < two_sided.mean_latency

    def test_validation(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip)
        with pytest.raises(ValueError):
            OsagBcast(comm, slice_lines=0)
        comm2 = Comm(chip)
        with pytest.raises(MemoryError):
            OsagBcast(comm2, slice_lines=200)
        comm3 = Comm(chip)
        osag = OsagBcast(comm3)

        def bad_root(core):
            cc = comm3.attach(core)
            buf = cc.alloc(32)
            yield from osag.bcast(cc, 99, buf, 32)

        with pytest.raises(Exception):
            run_spmd(chip, bad_root, core_ids=[0])


class TestOneSidedAllgather:
    def _run(self, P, block, enable_scatter=False):
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=list(range(P)))
        engine = OsagBcast(comm, enable_scatter=enable_scatter)
        out = {}

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(block)
            src.write(bytes([cc.rank + 1]) * block)
            dst = cc.alloc(block * P)
            yield from engine.allgather(cc, src, dst, block)
            out[cc.rank] = dst.read()

        res = run_spmd(chip, prog, core_ids=list(range(P)))
        expected = b"".join(bytes([r + 1]) * block for r in range(P))
        return out, expected, res

    @pytest.mark.parametrize("P,block", [(2, 64), (4, 64), (8, 48 * 32), (3, 5)])
    def test_blocks_assembled_everywhere(self, P, block):
        out, expected, _ = self._run(P, block)
        assert all(out[r] == expected for r in range(P))

    def test_block_larger_than_ring_buffer_multi_pass(self):
        out, expected, _ = self._run(8, 48 * 32 * 2 + 32)
        assert all(out[r] == expected for r in range(8))

    def test_repeated_allgathers(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=list(range(6)))
        engine = OsagBcast(comm, enable_scatter=False)
        sums = []

        def prog(core):
            cc = comm.attach(core)
            for rep in range(3):
                src = cc.alloc(32)
                src.write(bytes([cc.rank + rep]) * 32)
                dst = cc.alloc(32 * 6)
                yield from engine.allgather(cc, src, dst, 32)
                if cc.rank == 0:
                    sums.append(sum(dst.read()[::32]))

        run_spmd(chip, prog, core_ids=list(range(6)))
        assert sums == [sum(r + rep for r in range(6)) for rep in range(3)]

    def test_faster_than_two_sided_ring_allgather(self):
        """MPB forwarding beats the off-chip bouncing two-sided ring."""
        from repro.collectives import ring_allgather

        P, block = 16, 48 * 32

        def measure(one_sided):
            chip = SccChip(SccConfig())
            comm = Comm(chip, ranks=list(range(P)))
            engine = OsagBcast(comm, enable_scatter=False) if one_sided else None

            def prog(core):
                cc = comm.attach(core)
                src = cc.alloc(block)
                src.write(bytes([cc.rank]) * block)
                dst = cc.alloc(block * P)
                if one_sided:
                    yield from engine.allgather(cc, src, dst, block)
                else:
                    yield from ring_allgather(cc, src, dst, block)

            return run_spmd(chip, prog, core_ids=list(range(P))).makespan

        assert measure(True) < measure(False)

    def test_scatter_disabled_engine_rejects_bcast(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=list(range(4)))
        engine = OsagBcast(comm, enable_scatter=False)

        def prog(core):
            cc = comm.attach(core)
            buf = cc.alloc(128)
            yield from engine.bcast(cc, 0, buf, 128)

        with pytest.raises(Exception):
            run_spmd(chip, prog, core_ids=[0])

    def test_zero_block_noop(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=list(range(4)))
        engine = OsagBcast(comm, enable_scatter=False)

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(0)
            dst = cc.alloc(0)
            yield from engine.allgather(cc, src, dst, 0)

        assert run_spmd(chip, prog, core_ids=list(range(4))).makespan == 0.0
