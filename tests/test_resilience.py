"""Property tests for :mod:`repro.resilience` (ISSUE 10 satellite).

Pinned here:

- **Phi accrual** (:class:`PhiAccrualDetector`): phi is monotone
  non-decreasing in silence, ``None`` below ``min_samples`` (fixed
  deadline fallback), deterministic across identically-fed instances,
  and the bisected :meth:`timeout` is the threshold crossing of the
  same phi curve (clamped to ``[floor, cap]``).  Under sustained
  uniform jitter the adaptive timeout sits far enough above the delay
  distribution that the false-positive rate over fresh draws is zero.
- **RetryPolicy**: schedules respect ``max_retries`` / ``cap`` /
  ``budget`` bounds, jitter stays inside the declared fraction,
  streams are deterministic per ``(policy, rank, site)`` and
  independent across ranks and sites, and ``max_total_pause`` is a
  true upper bound on any concrete schedule.  ``plan_delays(None)``
  reproduces the legacy immediate-re-send contract bit-for-bit.
- **End to end** (asyncio backend, UniformDelay): the adaptive service
  configuration on a fault-free run never suspects anyone -- the
  zero-false-positive property the I8 invariant checks online under
  faults.
"""

import math
import random
from dataclasses import replace

import pytest

from repro.resilience import (
    IMMEDIATE, DetectorConfig, OverloadError, PhiAccrualDetector,
    RetryPolicy, plan_delays,
)
from repro.transport.models import UniformDelay
from repro.transport.scenarios import SCENARIOS, run_asyncio

# -- detector ----------------------------------------------------------------


def _fed(delays, config=None, member=3):
    det = PhiAccrualDetector(config)
    for d in delays:
        det.observe(member, d)
    return det


class TestDetectorConfig:
    def test_defaults_valid(self):
        DetectorConfig()

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0.0},
        {"window": 1},
        {"min_std": 0.0},
        {"min_samples": 1},
        {"floor": -1.0},
        {"cap": -1.0},
        {"floor": 1_000.0, "cap": 500.0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DetectorConfig(**kwargs)


class TestPhiProperties:
    def test_phi_monotone_in_silence(self):
        rng = random.Random(7)
        for trial in range(20):
            delays = [rng.uniform(20.0, 400.0) for _ in range(16)]
            det = _fed(delays)
            grid = [i * 25.0 for i in range(80)]
            phis = [det.phi(3, s) for s in grid]
            assert all(p is not None for p in phis)
            for a, b in zip(phis, phis[1:]):
                assert b >= a - 1e-12

    def test_abstains_below_min_samples(self):
        cfg = DetectorConfig(min_samples=4)
        det = _fed([100.0, 110.0, 90.0], cfg)  # 3 < 4
        assert det.phi(3, 1_000.0) is None
        assert det.timeout(3, fallback=6_000.0) == 6_000.0
        det.observe(3, 105.0)
        assert det.phi(3, 1_000.0) is not None

    def test_determinism_across_instances(self):
        delays = [random.Random(3).uniform(10.0, 300.0) for _ in range(32)]
        a, b = _fed(delays), _fed(delays)
        for s in (0.0, 150.0, 600.0, 5_000.0):
            assert a.phi(3, s) == b.phi(3, s)
        assert a.timeout(3, fallback=1.0) == b.timeout(3, fallback=1.0)

    def test_timeout_is_the_threshold_crossing(self):
        cfg = DetectorConfig(threshold=8.0, floor=0.0)
        det = _fed([100.0, 130.0, 90.0, 120.0, 110.0, 95.0], cfg)
        t = det.timeout(3, fallback=6_000.0)
        assert det.phi(3, t) >= cfg.threshold - 1e-6
        assert det.phi(3, t - 1.0) <= cfg.threshold + 1e-6

    def test_floor_and_cap_clamp(self):
        tight = [50.0] * 8  # min_std guards the degenerate fit
        det = _fed(tight, DetectorConfig(floor=2_000.0))
        assert det.timeout(3, fallback=1.0) >= 2_000.0
        wide = [random.Random(5).uniform(100.0, 9_000.0) for _ in range(32)]
        det = _fed(wide, DetectorConfig(floor=100.0, cap=4_000.0))
        assert det.timeout(3, fallback=1.0) <= 4_000.0

    def test_congestion_widens_the_window(self):
        quiet = _fed([100.0 + i % 3 for i in range(32)])
        rng = random.Random(11)
        congested = _fed([rng.uniform(100.0, 2_000.0) for _ in range(32)])
        assert congested.timeout(3, fallback=1.0) \
            > quiet.timeout(3, fallback=1.0)

    def test_window_keeps_most_recent(self):
        cfg = DetectorConfig(window=4)
        det = _fed([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], cfg)
        assert det.samples(3) == (3.0, 4.0, 5.0, 6.0)

    def test_forget_drops_history(self):
        det = _fed([100.0] * 8)
        det.forget(3)
        assert det.samples(3) == ()
        assert det.phi(3, 500.0) is None

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            PhiAccrualDetector().observe(0, -1.0)

    def test_zero_false_positives_under_uniform_jitter(self):
        """Feed U(50, 150) delays, then check 1000 fresh draws from the
        same distribution: none reaches the adaptive timeout."""
        for seed in range(5):
            rng = random.Random(seed)
            det = _fed([rng.uniform(50.0, 150.0) for _ in range(32)])
            bound = det.timeout(3, fallback=6_000.0)
            draws = [rng.uniform(50.0, 150.0) for _ in range(1_000)]
            assert max(draws) < bound
            # ... while a genuinely dead member still gets suspected in
            # bounded time (the cap-free curve crosses any threshold).
            assert math.isfinite(bound)


# -- retry policy ------------------------------------------------------------

_SITES = ("hb", "view", "ft_flag", "oc.notify")


class TestRetryPolicyProperties:
    def test_schedule_length_and_bounds(self):
        p = RetryPolicy.backoff(max_retries=6, base=40.0, factor=2.0,
                                cap=600.0, jitter=0.1, seed=20)
        for rank in range(8):
            for site in _SITES:
                ds = p.delays(rank, site)
                assert len(ds) == 6
                for d in ds:
                    assert 0.0 < d <= 600.0 * 1.1

    def test_jitter_stays_inside_declared_fraction(self):
        p = RetryPolicy.backoff(max_retries=5, base=100.0, factor=2.0,
                                jitter=0.25, seed=3)
        for rank in range(8):
            ds = p.delays(rank, "s")
            for attempt, d in enumerate(ds, start=1):
                nominal = 100.0 * 2.0 ** (attempt - 1)
                assert nominal * 0.75 <= d <= nominal * 1.25

    def test_deterministic_per_rank_site(self):
        p = RetryPolicy.backoff(max_retries=4, base=50.0, jitter=0.2, seed=9)
        q = RetryPolicy.backoff(max_retries=4, base=50.0, jitter=0.2, seed=9)
        for rank in range(6):
            for site in _SITES:
                assert p.delays(rank, site) == q.delays(rank, site)

    def test_streams_independent_across_ranks_and_sites(self):
        p = RetryPolicy.backoff(max_retries=4, base=50.0, jitter=0.2, seed=9)
        schedules = {(rank, site): p.delays(rank, site)
                     for rank in range(6) for site in _SITES}
        assert len(set(schedules.values())) == len(schedules)

    def test_budget_truncates_cumulative_pause(self):
        p = RetryPolicy.backoff(max_retries=10, base=100.0, factor=2.0,
                                jitter=0.1, budget=1_000.0, seed=1)
        for rank in range(6):
            ds = p.delays(rank, "s")
            assert len(ds) < 10
            assert sum(ds) <= 1_000.0

    def test_max_total_pause_is_an_upper_bound(self):
        p = RetryPolicy.backoff(max_retries=6, base=40.0, factor=2.0,
                                cap=600.0, jitter=0.1, seed=20)
        worst = p.max_total_pause()
        for rank in range(16):
            for site in _SITES:
                assert sum(p.delays(rank, site)) <= worst + 1e-9

    def test_immediate_and_none_reproduce_legacy(self):
        assert IMMEDIATE.delays(0, "s") == (0.0, 0.0, 0.0)
        assert plan_delays(None, 0, "s", 3) == (0.0, 0.0, 0.0)
        assert plan_delays(None, 5, "other", 0) == ()
        assert RetryPolicy(max_retries=0).delays(0, "s") == ()

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"base": -1.0},
        {"factor": 0.0},
        {"cap": -1.0},
        {"jitter": 1.0},
        {"jitter": -0.1},
        {"budget": -1.0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_overload_error_carries_structured_fields(self):
        err = OverloadError(msg_id=7, rank=2, epoch=3, spent=5, budget=5)
        assert (err.msg_id, err.rank, err.epoch) == (7, 2, 3)
        assert "refused" in str(err)


# -- end to end: adaptive config on a jittery fault-free run -----------------


class TestAdaptiveFalsePositiveRate:
    """The ISSUE 10 acceptance property, in miniature: the adaptive
    configuration under per-operation UniformDelay jitter (asyncio
    backend) must never suspect a live member on a fault-free run."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_suspicion_without_faults(self, seed):
        sc = replace(SCENARIOS["ft_broadcast"], adaptive=True)
        res = run_asyncio(sc, seed, model=UniformDelay(0.05, 5.0),
                          with_plan=False)
        kinds = [r.kind for r in res.records]
        assert "member.suspect" not in kinds
        assert "svc.report_failed" not in kinds
        baseline = run_asyncio(SCENARIOS["ft_broadcast"], seed,
                               model=UniformDelay(0.05, 5.0),
                               with_plan=False)
        assert res.outcomes == baseline.outcomes
