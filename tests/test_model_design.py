"""Tests for the design-space analysis module."""

import pytest

from repro.model import TABLE_1, design


class TestNotificationLatency:
    def test_zero_children_is_free(self):
        assert design.notification_latency(0, 2, TABLE_1) == 0.0

    def test_one_child_single_hop(self):
        lat = design.notification_latency(1, 2, TABLE_1)
        assert lat > 0
        # One write plus one detection.
        from repro.model.broadcast import detect_cost, flag_write_cost

        assert lat == pytest.approx(flag_write_cost(TABLE_1) + detect_cost(TABLE_1))

    def test_chain_grows_linearly(self):
        l8 = design.notification_latency(8, 1, TABLE_1)
        l16 = design.notification_latency(16, 1, TABLE_1)
        assert l16 == pytest.approx(2 * l8, rel=0.05)

    def test_binary_grows_logarithmically(self):
        l8 = design.notification_latency(8, 2, TABLE_1)
        l64 = design.notification_latency(64, 2, TABLE_1)
        assert l64 < 3 * l8

    def test_binary_beats_chain_and_flat_for_large_families(self):
        for j in (7, 23, 47):
            binary = design.notification_latency(j, 2, TABLE_1)
            chain = design.notification_latency(j, 1, TABLE_1)
            flat = design.notification_latency(j, j, TABLE_1)
            assert binary < chain
            assert binary < flat

    def test_binary_near_optimal(self):
        """The paper's Section 4.1 claim, quantified: under our cost model
        binary is within ~30% of the best degree everywhere (exactly
        optimal when detection is cheap relative to writes)."""
        for j in (2, 7, 23, 47):
            best_deg, best = design.optimal_notify_degree(j, TABLE_1)
            binary = design.notification_latency(j, 2, TABLE_1)
            assert binary <= 1.3 * best
        # With cheap detection (fast polls), sequential flag writes
        # dominate and low degrees win outright.
        cheap_detect = TABLE_1.with_(t_poll=0.02)
        deg, _ = design.optimal_notify_degree(7, cheap_detect)
        assert deg <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            design.notification_latency(-1, 2, TABLE_1)
        with pytest.raises(ValueError):
            design.notification_latency(3, 0, TABLE_1)


class TestRecommendedK:
    def test_paper_choice_for_the_scc(self):
        """Section 5.2: k=7 'provides the best trade-off' at P=48 -- the
        same tree depth as k<=24 with the fewest flags to poll."""
        assert design.recommended_k(48) == 7

    def test_small_worlds(self):
        assert design.recommended_k(1) == 1
        assert design.recommended_k(2) == 1
        # P=8: depth 1 needs k=7.
        assert design.recommended_k(8) == 7

    def test_respects_contention_threshold(self):
        # P=512 with threshold 24: depth(24)=2 -> smallest k with depth 2.
        k = design.recommended_k(512)
        assert k <= 24
        from repro.core import kary_depth

        assert kary_depth(512, k) == kary_depth(512, 24)
        assert kary_depth(512, k - 1) > kary_depth(512, k)

    def test_threshold_override(self):
        # With no contention limit, a flat 47-ary tree (depth 1) wins;
        # with a tight limit the rule degrades gracefully.
        assert design.recommended_k(48, contention_threshold=47) == 47
        assert design.recommended_k(48, contention_threshold=4) == 4


class TestOsagModel:
    def test_sits_between_two_sided_and_oc(self):
        from repro.model import broadcast

        osag = design.osag_throughput(48, TABLE_1)
        two_sided = broadcast.scatter_allgather_throughput_complete(48, TABLE_1)
        oc = broadcast.ocbcast_throughput_complete(TABLE_1, 7)
        assert two_sided < osag < oc

    def test_close_to_measured(self):
        """The bench measures ~16 MB/s at 4096 CL; the model must land in
        the same neighbourhood."""
        assert design.osag_throughput(48, TABLE_1) == pytest.approx(16.0, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            design.osag_throughput(1, TABLE_1)


class TestMpmdOverhead:
    def test_positive_and_microsecond_scale(self):
        ov = design.mpmd_overhead_per_chunk(TABLE_1)
        assert 0.0 < ov < 2.0
