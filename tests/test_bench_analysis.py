"""Tests for trace-based pipeline analysis."""

import pytest

from repro import Comm, OcBcast, OcBcastConfig, SccChip, SccConfig, run_spmd
from repro.bench.analysis import (
    busiest_port,
    chunk_timeline,
    flag_traffic,
    mpb_port_utilisation,
    pipeline_depth,
    pipeline_overlap,
)
from repro.sim import Tracer


def traced_broadcast(nchunks=6, k=7, P=48, num_buffers=2):
    tracer = Tracer(enabled=True)
    chip = SccChip(SccConfig(), tracer=tracer)
    comm = Comm(chip, ranks=list(range(P)))
    oc = OcBcast(comm, OcBcastConfig(k=k, num_buffers=num_buffers))
    nbytes = 96 * 32 * nchunks

    def program(core):
        cc = comm.attach(core)
        buf = cc.alloc(nbytes)
        if cc.rank == 0:
            buf.write(bytes(nbytes))
        yield from oc.bcast(cc, 0, buf, nbytes)

    run_spmd(chip, program, core_ids=list(range(P)))
    return chip, tracer


class TestChunkTimeline:
    def test_one_span_per_chunk(self):
        chip, tracer = traced_broadcast(nchunks=4)
        spans = chunk_timeline(tracer)
        assert [s.idx for s in spans] == [0, 1, 2, 3]

    def test_every_nonroot_completes_every_chunk(self):
        chip, tracer = traced_broadcast(nchunks=3, P=12)
        for s in chunk_timeline(tracer):
            assert s.completions == 11

    def test_spans_are_positive_and_ordered(self):
        chip, tracer = traced_broadcast(nchunks=4)
        spans = chunk_timeline(tracer)
        for s in spans:
            assert s.span > 0
        staged = [s.staged_at for s in spans]
        assert staged == sorted(staged)


class TestPipelineMetrics:
    def test_double_buffering_overlaps_chunks(self):
        chip, tracer = traced_broadcast(nchunks=8, num_buffers=2)
        assert pipeline_overlap(tracer) > 1.3
        assert pipeline_depth(tracer) >= 2

    def test_deep_pipeline_with_more_chunks(self):
        chip, tracer = traced_broadcast(nchunks=12)
        # Chunks at different tree levels are in flight simultaneously.
        assert pipeline_depth(tracer) >= 2

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            pipeline_overlap(Tracer(enabled=True))


class TestFlagTraffic:
    def test_counts_notify_and_done_flags(self):
        chip, tracer = traced_broadcast(nchunks=2, P=12, k=3)
        counts = flag_traffic(tracer)
        assert counts.get("oc.notify", 0) > 0
        # Every non-root sets a done flag once per chunk: 11 ranks x 2.
        done_total = sum(v for name, v in counts.items() if name.startswith("oc.done"))
        assert done_total == 22


class TestPortUtilisation:
    def test_utilisation_in_unit_range(self):
        chip, tracer = traced_broadcast(nchunks=4)
        util = mpb_port_utilisation(chip)
        assert set(util) == set(range(48))
        assert all(0.0 <= u <= 1.0 for u in util.values())

    def test_busiest_port_is_a_tree_parent(self):
        chip, tracer = traced_broadcast(nchunks=6, k=7)
        core_id, util = busiest_port(chip)
        # Root (rank/core 0) or a first-level parent (cores 1..7) serves
        # k concurrent getters: they dominate port usage.
        assert core_id <= 7
        assert util > 0.0
