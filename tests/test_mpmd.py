"""Tests for IPIs and the MPMD interrupt-driven broadcast."""

import pytest

from repro import Comm, SccChip, SccConfig, run_spmd
from repro.core import Mailbox, MpmdBcast


class TestIrqController:
    def test_send_and_wait(self):
        chip = SccChip(SccConfig())
        got = {}

        def receiver(core):
            payload = yield from chip.irq.wait(core)
            got["payload"] = payload
            got["time"] = chip.now

        def sender(core):
            yield core.compute(5.0)
            yield from chip.irq.send(core, 0, ("hello", 42))

        run_spmd(chip, lambda c: receiver(c) if c.id == 0 else sender(c),
                 core_ids=[0, 1])
        assert got["payload"] == ("hello", 42)
        # Delivery costs the handler entry (1 us) after the send at ~5.3.
        assert got["time"] > 6.0

    def test_queueing_preserves_order(self):
        chip = SccChip(SccConfig())
        got = []

        def receiver(core):
            for _ in range(3):
                payload = yield from chip.irq.wait(core)
                got.append(payload)

        def sender(core):
            for i in range(3):
                yield from chip.irq.send(core, 0, i)

        run_spmd(chip, lambda c: receiver(c) if c.id == 0 else sender(c),
                 core_ids=[0, 1])
        assert got == [0, 1, 2]

    def test_pending_count(self):
        chip = SccChip(SccConfig())

        def sender(core):
            yield from chip.irq.send(core, 5, "x")
            yield from chip.irq.send(core, 5, "y")

        run_spmd(chip, sender, core_ids=[0])
        assert chip.irq.pending(5) == 2
        assert chip.irq.sent == 2
        assert chip.irq.delivered == 0

    def test_invalid_target(self):
        chip = SccChip(SccConfig())

        def sender(core):
            yield from chip.irq.send(core, 99, "x")

        with pytest.raises(Exception):
            run_spmd(chip, sender, core_ids=[0])


class TestMailbox:
    def test_fifo_and_len(self):
        box = Mailbox()
        box.deposit(b"a")
        box.deposit(b"b")
        assert len(box) == 2
        assert box.poll() == b"a"
        assert box.poll() == b"b"
        assert box.poll() is None


def run_pubsub(P, messages, k=3, chunk_lines=8, publisher=0, subscribers=None):
    chip = SccChip(SccConfig())
    comm = Comm(chip, ranks=list(range(P)))
    mpmd = MpmdBcast(comm, publisher=publisher, k=k, chunk_lines=chunk_lines)
    mpmd.start_daemons(chip)
    received = {}

    def pub(core):
        cc = comm.attach(core)
        for m in messages:
            buf = cc.alloc(len(m))
            buf.write(m)
            yield from mpmd.publish(cc, buf, len(m))
        yield from mpmd.stop_daemons(cc)

    def sub(core):
        cc = comm.attach(core)
        got = []
        for _ in messages:
            got.append((yield from mpmd.deliver(cc)))
        received[cc.rank] = got

    run_spmd(
        chip,
        lambda c: pub(c) if comm.rank_of(c.id) == publisher else sub(c),
        core_ids=list(range(P)),
    )
    return received


class TestMpmdBcast:
    @pytest.mark.parametrize("P", [2, 3, 8, 16])
    def test_single_message(self, P):
        msg = bytes((i * 3 + 1) % 256 for i in range(500))
        received = run_pubsub(P, [msg])
        assert len(received) == P - 1
        assert all(got == [msg] for got in received.values())

    def test_multiple_messages_in_order(self):
        msgs = [bytes([i + 1]) * (8 * 32 * 2 + 3) for i in range(4)]
        received = run_pubsub(8, msgs)
        assert all(got == msgs for got in received.values())

    def test_multi_chunk_message(self):
        msg = bytes(i % 256 for i in range(8 * 32 * 5 + 7))
        received = run_pubsub(6, [msg], chunk_lines=8)
        assert all(got == [msg] for got in received.values())

    def test_nonzero_publisher(self):
        msg = b"published-from-three" * 10
        received = run_pubsub(8, [msg], publisher=3)
        assert set(received) == set(range(8)) - {3}
        assert all(got == [msg] for got in received.values())

    def test_lagging_subscriber_buffers_in_mailbox(self):
        """A subscriber that collects late still sees every message."""
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=list(range(4)))
        mpmd = MpmdBcast(comm, k=2, chunk_lines=4)
        mpmd.start_daemons(chip)
        msgs = [bytes([i + 1]) * 64 for i in range(3)]
        got = {}

        def pub(core):
            cc = comm.attach(core)
            for m in msgs:
                buf = cc.alloc(len(m))
                buf.write(m)
                yield from mpmd.publish(cc, buf, len(m))
            yield from mpmd.stop_daemons(cc)

        def lazy_sub(core):
            cc = comm.attach(core)
            yield core.compute(10000.0)  # far after all publishes
            out = []
            for _ in msgs:
                out.append((yield from mpmd.deliver(cc)))
            got[cc.rank] = out

        run_spmd(chip, lambda c: pub(c) if c.id == 0 else lazy_sub(c),
                 core_ids=[0, 1, 2, 3])
        assert all(v == msgs for v in got.values())

    def test_publish_validation(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=list(range(4)))
        mpmd = MpmdBcast(comm, k=2, chunk_lines=4)

        def not_publisher(core):
            cc = comm.attach(core)
            buf = cc.alloc(32)
            yield from mpmd.publish(cc, buf, 32)

        with pytest.raises(Exception):
            run_spmd(chip, not_publisher, core_ids=[1])

    def test_constructor_validation(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip)
        with pytest.raises(ValueError):
            MpmdBcast(comm, publisher=99)
        with pytest.raises(ValueError):
            MpmdBcast(comm, k=0)
        comm2 = Comm(chip)
        with pytest.raises(MemoryError):
            MpmdBcast(comm2, chunk_lines=130)  # 2x130 + k > 256
