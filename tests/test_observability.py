"""Tests for the observability layer (``repro.obs``).

Covers the four guarantees the layer makes:

- *passivity*: attaching a tracer, a metrics registry and an invariant
  checker leaves every measured latency bit-identical (the acceptance
  criterion of docs/OBSERVABILITY.md);
- *metrics*: counters/gauges/histograms aggregate correctly and the chip
  harvest reports sane, internally consistent numbers;
- *Chrome trace export*: the emitted JSON is well-formed (validated by
  the same checker a test would use), spans pair up, ranks map to
  per-core tracks;
- *invariant checking*: clean runs pass, and each invariant has a
  negative test -- including the end-to-end one where a seeded dropped
  flag write is caught as ``lost-write`` while the baseline deadlocks.
"""

import json

import pytest

from repro.bench import BcastSpec, run_broadcast
from repro.cli import main as cli_main
from repro.core import OcBcast, OcBcastConfig
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.obs import (
    InvariantChecker,
    InvariantViolation,
    MetricsRegistry,
    canonical_trace,
    collect_chip_metrics,
    to_chrome_trace,
    trace_digest,
    validate_chrome_trace,
)
from repro.obs.metrics import Histogram
from repro.rcce import Comm
from repro.scc import ContentionMode, SccChip, SccConfig, run_spmd
from repro.scc.config import CACHE_LINE
from repro.sim import DeadlockError, SimError, Tracer
from repro.sim.trace import TraceRecord


# ---------------------------------------------------------------------------
# MetricsRegistry


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        reg.set("g", 7.5)
        h = reg.histogram("h")
        for v in (0.005, 0.5, 50.0):
            h.observe(v)
        flat = reg.flat()
        assert flat["a"] == 3.0
        assert flat["g"] == 7.5
        assert flat["h.count"] == 3
        assert flat["h.mean"] == pytest.approx((0.005 + 0.5 + 50.0) / 3)
        assert flat["h.min"] == 0.005 and flat["h.max"] == 50.0

    def test_histogram_buckets_and_zeros(self):
        h = Histogram("w", bounds=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)
        h.observe_zeros(7)
        s = h.summary()
        assert s["count"] == 10
        assert s["min"] == 0.0 and s["max"] == 100.0
        # 8 samples <= 1.0 (7 zeros + 0.5), one in (1, 10], one overflow.
        assert h.buckets == [8, 1, 1]
        flat = MetricsRegistry()
        flat.histograms["w"] = h
        out = flat.flat()
        assert out["w.le_1"] == 8 and out["w.le_10"] == 9 - 8 and out["w.le_inf"] == 1

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_json_and_csv_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("events", 5)
        reg.set("util", 0.25)
        doc = json.loads(reg.to_json())
        assert doc["counters"]["events"] == 5.0
        rows = [line.split(",") for line in reg.to_csv().splitlines()]
        assert rows[0] == ["metric", "value"]
        assert ["events", "5.0"] in rows or ["events", "5"] in rows


# ---------------------------------------------------------------------------
# Passivity: instrumentation must not move a single event.


def _latencies(config, nbytes, *, instrumented):
    tracer = checker = metrics = None
    if instrumented:
        tracer = Tracer(enabled=True)
        checker = InvariantChecker(lossless=True)
        tracer.add_listener(checker.feed)
        metrics = MetricsRegistry()
    res = run_broadcast(
        BcastSpec("oc", k=7), nbytes, config=config,
        iters=2, warmup=1, tracer=tracer, metrics=metrics,
    )
    if checker is not None:
        checker.check()
    if metrics is not None:
        assert len(metrics) > 0
    return res.latencies


class TestPassivity:
    @pytest.mark.perf
    def test_instrumentation_wall_clock_overhead_is_bounded(self):
        """Wall-clock guard (deselected from tier-1: timing-sensitive).

        Full instrumentation -- tracer, online checker, metrics -- may
        slow the host-time run, but within a small factor; the criterion
        that the *disabled* path costs <2% is enforced by `make perf` /
        perf_check on the kernel benchmark, whose hot loop this layer
        does not touch.
        """
        import time
        nbytes = 96 * CACHE_LINE

        def timed(instrumented):
            t0 = time.perf_counter()
            for _ in range(3):
                _latencies(SccConfig(), nbytes, instrumented=instrumented)
            return time.perf_counter() - t0

        timed(False)  # warm caches
        base, instrumented = timed(False), timed(True)
        assert instrumented < 3.0 * base + 0.05

    def test_metrics_on_latencies_bit_identical_batch(self):
        nbytes = 96 * CACHE_LINE
        base = _latencies(SccConfig(), nbytes, instrumented=False)
        obs = _latencies(SccConfig(), nbytes, instrumented=True)
        assert base == obs  # exact equality, not approx

    def test_metrics_on_latencies_bit_identical_exact_mode(self):
        cfg = SccConfig(contention_mode=ContentionMode.EXACT, jitter=0.02)
        nbytes = 24 * CACHE_LINE
        assert (_latencies(cfg, nbytes, instrumented=False)
                == _latencies(cfg, nbytes, instrumented=True))


# ---------------------------------------------------------------------------
# Chip harvest sanity


class TestChipHarvest:
    def test_harvested_metrics_are_consistent(self):
        metrics = MetricsRegistry()
        tracer = Tracer(enabled=True)
        run_broadcast(
            BcastSpec("oc", k=7), 96 * CACHE_LINE,
            iters=1, warmup=0, tracer=tracer, metrics=metrics,
        )
        flat = metrics.flat()
        assert flat["sim.events_scheduled"] > 0
        assert flat["trace.records"] == len(tracer.records)
        assert flat["flags.writes"] > 0
        assert flat["oc.bcasts"] == 1.0
        assert flat["oc.chunks"] == 1.0
        assert flat["mpb.port.acquisitions.total"] > 0
        assert 0.0 < flat["mpb.port.utilisation.max"] <= 1.0
        assert flat["core.compute_time.total"] > 0
        assert flat["core.poll_time.total"] > 0
        # Wait histogram observed one sample per port grant.
        assert flat["mpb.port.wait_us.count"] == flat["mpb.port.acquisitions.total"]

    def test_collect_into_external_registry(self):
        chip = SccChip(SccConfig())
        reg = MetricsRegistry()
        out = collect_chip_metrics(chip, reg, per_entity=False)
        assert out is reg
        assert reg.flat()["sim.events_scheduled"] == 0.0


# ---------------------------------------------------------------------------
# Chrome trace export


def _traced_run(nbytes=8 * CACHE_LINE):
    tracer = Tracer(enabled=True)
    run_broadcast(BcastSpec("oc", k=3), nbytes,
                  config=SccConfig(mesh_cols=2, mesh_rows=2),
                  iters=1, warmup=0, tracer=tracer)
    return tracer.records


class TestChromeTrace:
    def test_export_is_well_formed(self):
        records = _traced_run()
        doc = to_chrome_trace(records)
        validate_chrome_trace(doc)  # raises on malformation
        events = doc["traceEvents"]
        assert any(e["ph"] == "B" and e["name"] == "oc.chunk" for e in events)
        assert any(e["ph"] == "E" for e in events)
        # rank/core sources share one track per core id.
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert any(n.startswith(("core", "rank")) for n in names)

    def test_span_tid_is_the_core_id(self):
        doc = to_chrome_trace(_traced_run())
        tids = {e["tid"] for e in doc["traceEvents"]
                if e["ph"] == "B" and e["name"] == "oc.chunk"}
        assert tids <= set(range(8))

    def test_end_events_carry_no_args(self):
        doc = to_chrome_trace(_traced_run())
        assert all(not e.get("args")
                   for e in doc["traceEvents"] if e["ph"] == "E")

    def test_write_and_reload(self, tmp_path):
        from repro.obs import write_chrome_trace
        path = tmp_path / "t.json"
        write_chrome_trace(_traced_run(), path)
        validate_chrome_trace(json.loads(path.read_text()))

    def test_validator_rejects_malformed_docs(self):
        ok = {"name": "x", "ph": "i", "ts": 0.0, "pid": 1, "tid": 0, "s": "t"}
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "i", "ts": 0.0,
                                                   "pid": 1, "tid": 0}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [dict(ok, ph="Z")]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [dict(ok, ts="soon")]})
        # E without a matching B, and an unclosed B.
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "E", "ts": 1.0, "pid": 1, "tid": 0}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "B", "ts": 1.0, "pid": 1, "tid": 0}]})
        # E that ends before its B began.
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "B", "ts": 2.0, "pid": 1, "tid": 0},
                {"name": "x", "ph": "E", "ts": 1.0, "pid": 1, "tid": 0}]})


# ---------------------------------------------------------------------------
# Golden serialization


class TestCanonicalTrace:
    def test_detail_key_order_does_not_matter(self):
        a = TraceRecord(1.5, "core0", "k", {"x": 1, "y": 2})
        b = TraceRecord(1.5, "core0", "k", {"y": 2, "x": 1})
        assert canonical_trace([a]) == canonical_trace([b])

    def test_digest_is_sensitive_to_any_change(self):
        recs = [TraceRecord(1.0, "core0", "k", {"x": 1})]
        base = trace_digest(recs)
        assert trace_digest([TraceRecord(1.0 + 1e-12, "core0", "k", {"x": 1})]) != base
        assert trace_digest([TraceRecord(1.0, "core1", "k", {"x": 1})]) != base
        assert trace_digest([TraceRecord(1.0, "core0", "k", {"x": 2})]) != base


# ---------------------------------------------------------------------------
# Invariant checker


def _rec(kind, source, **detail):
    return TraceRecord(0.0, source, kind, detail)


class TestInvariantCheckerUnits:
    def test_clean_stream_is_ok(self):
        c = InvariantChecker()
        c.feed(_rec("flag_write", "core0", flag="oc.notify", owner=1, off=0,
                    seq=1, landed="ok"))
        # core0 invented nothing: it is the root once it stages.
        assert not c.ok  # staging never seen -> invented notify
        c2 = InvariantChecker()
        c2.feed(_rec("oc.chunk_staged", "rank0", idx=0, seq=1, buf=0, floor=-1))
        c2.feed(_rec("flag_write", "core0", flag="oc.notify", owner=1, off=0,
                     seq=1, landed="ok"))
        c2.feed(_rec("oc.fetch", "rank1", idx=0, seq=1, parent=0, buf=0,
                     floor=-1))
        assert c2.ok

    def test_lost_write_fires_only_when_lossless(self):
        rec = _rec("flag_write", "core0", flag="f", owner=1, off=0, seq=1,
                   landed="dropped")
        lossy = InvariantChecker(lossless=False)
        lossy.feed(rec)
        assert lossy.ok
        strictly = InvariantChecker(lossless=True)
        strictly.feed(rec)
        assert not strictly.ok
        assert strictly.violations[0].invariant == "lost-write"

    def test_flag_fifo_regression_detected(self):
        c = InvariantChecker()
        c.feed(_rec("flag_write", "core0", flag="oc.done0", owner=1, off=64,
                    seq=2, landed="ok"))
        c.feed(_rec("flag_write", "core0", flag="oc.done0", owner=1, off=64,
                    seq=1, landed="ok"))
        assert [v.invariant for v in c.violations] == ["flag-fifo"]

    def test_invented_notify_detected(self):
        c = InvariantChecker()
        c.feed(_rec("flag_write", "core3", flag="oc.notify", owner=5, off=0,
                    seq=4, landed="ok"))
        assert c.violations[0].invariant == "no-invented-notify"

    def test_fetch_before_notify_detected(self):
        c = InvariantChecker()
        c.feed(_rec("oc.fetch", "rank3", idx=0, seq=1, parent=0, buf=0,
                    floor=-1))
        assert c.violations[0].invariant == "notify-before-fetch"

    def test_reuse_before_ack_detected_and_dead_child_exempted(self):
        def staged(floor):
            return _rec("oc.chunk_staged", "rank0", idx=0, seq=floor + 2,
                        buf=0, floor=floor)

        c = InvariantChecker()
        c.feed(_rec("flag_write", "core2", flag="oc.done", owner=0, off=64,
                    seq=0, landed="ok"))
        c.feed(staged(1))  # core2 only acked 0 < floor 1
        assert c.violations[0].invariant == "no-reuse-before-ack"
        # Same stream, but the lagging child was declared dead first.
        c2 = InvariantChecker()
        c2.feed(_rec("flag_write", "core2", flag="oc.done", owner=0, off=64,
                     seq=0, landed="ok"))
        c2.feed(_rec("oc.ft.child_dead", "rank0", child=2))
        c2.feed(staged(1))
        assert c2.ok

    def test_strict_mode_raises_at_the_record(self):
        c = InvariantChecker(strict=True)
        with pytest.raises(InvariantViolation) as ei:
            c.feed(_rec("oc.fetch", "rank3", idx=0, seq=1, parent=0, buf=0,
                        floor=-1))
        assert ei.value.invariant == "notify-before-fetch"

    def test_violation_message_carries_evidence(self):
        c = InvariantChecker()
        c.feed(_rec("flag_write", "core0", flag="f", owner=1, off=0, seq=1,
                    landed="dropped"))
        msg = str(c.violations[0])
        assert "lost-write" in msg and "dropped" in msg
        assert "offending record" in msg and "last" in msg

    def test_attach_requires_enabled_tracer(self):
        chip = SccChip(SccConfig(mesh_cols=1, mesh_rows=1))
        with pytest.raises(ValueError):
            InvariantChecker().attach(chip)

    def test_uniform_agreement_mixed_outcomes_detected(self):
        c = InvariantChecker()
        c.feed(_rec("svc.outcome", "rank0", msg=1, status="ok", epoch=1,
                    crc=0xDEAD))
        c.feed(_rec("svc.outcome", "rank1", msg=1, status="aborted", epoch=1))
        assert [v.invariant for v in c.violations] == ["uniform-agreement"]

    def test_uniform_agreement_crc_mismatch_detected(self):
        c = InvariantChecker()
        c.feed(_rec("svc.outcome", "rank0", msg=1, status="ok", epoch=1,
                    crc=0xDEAD))
        c.feed(_rec("svc.outcome", "rank1", msg=1, status="ok", epoch=1,
                    crc=0xBEEF))
        assert [v.invariant for v in c.violations] == ["uniform-agreement"]

    def test_uniform_agreement_clean_and_non_decisive_cases(self):
        c = InvariantChecker()
        # All-ok with matching crc, an evicted rank, a self-evicted rank
        # and a separate all-abort message: no violation.
        c.feed(_rec("svc.outcome", "rank0", msg=1, status="ok", epoch=1,
                    crc=0xDEAD))
        c.feed(_rec("svc.outcome", "rank1", msg=1, status="ok", epoch=1,
                    crc=0xDEAD))
        c.feed(_rec("svc.outcome", "rank2", msg=1, status="evicted", epoch=1))
        c.feed(_rec("svc.outcome", "rank3", msg=1, status="self_evicted",
                    epoch=1))
        c.feed(_rec("svc.outcome", "rank0", msg=2, status="aborted", epoch=2))
        c.feed(_rec("svc.outcome", "rank1", msg=2, status="aborted", epoch=2))
        assert c.ok

    def test_service_attempt_resets_done_floors(self):
        # Stale done acks from a pre-recovery tree must not constrain the
        # re-rooted re-broadcast: svc.attempt fences them.
        c = InvariantChecker()
        c.feed(_rec("flag_write", "core2", flag="oc.done0", owner=1, off=64,
                    seq=3, landed="ok"))
        c.feed(_rec("svc.attempt", "rank1", round=2, epoch=1, src=1,
                    members=4))
        c.feed(_rec("oc.chunk_staged", "rank1", idx=1, seq=6, buf=1, floor=4))
        assert c.ok


class TestNoFalseEviction:
    """I8 unit cases over synthetic record streams."""

    @staticmethod
    def _hb(rank, rnd):
        return _rec("member.hb", f"rank{rank}", round=rnd, ok=True, to=0)

    @staticmethod
    def _suspect(member, rnd):
        return _rec("member.suspect", "rank0", member=member, round=rnd)

    def test_suspecting_a_flawless_heartbeater_is_a_violation(self):
        c = InvariantChecker(lossless=False)
        for rnd in (1, 2, 3):
            c.feed(self._hb(5, rnd))
        c.feed(self._suspect(5, 3))
        assert [v.invariant for v in c.violations] == ["no-false-eviction"]
        assert "rank5" in str(c.violations[0])

    def test_crashed_member_may_be_suspected(self):
        for fault, site in (("core_crash", "core5"),
                            ("repeated_crash", "core5 (churn)")):
            c = InvariantChecker(lossless=False)
            for rnd in (1, 2, 3):
                c.feed(self._hb(5, rnd))
            c.feed(_rec("fault.injected", "faults", fault=fault,
                        site=site, nth=4))
            c.feed(self._suspect(5, 3))
            assert c.ok, fault

    def test_silent_member_may_be_suspected(self):
        c = InvariantChecker(lossless=False)
        c.feed(self._hb(5, 1))
        c.feed(self._hb(5, 2))
        c.feed(self._suspect(5, 3))  # never sent round 3
        assert c.ok

    def test_member_with_a_round_gap_may_be_suspected(self):
        # A lagging orphan that fast-forwarded over round 2 *did* miss a
        # send -- suspicion later is not a detector bug.
        c = InvariantChecker(lossless=False)
        c.feed(self._hb(5, 1))
        c.feed(self._hb(5, 3))
        c.feed(self._suspect(5, 3))
        assert c.ok

    def test_failed_reporter_may_be_suspected(self):
        # The member itself exhausted its heartbeat retries this round:
        # the coordinator's silence is real even though the send was
        # traced.
        c = InvariantChecker(lossless=False)
        for rnd in (1, 2, 3):
            c.feed(self._hb(5, rnd))
        c.feed(_rec("svc.report_failed", "rank5", round=3))
        c.feed(self._suspect(5, 3))
        assert c.ok

    def test_never_heartbeated_member_may_be_suspected(self):
        c = InvariantChecker(lossless=False)
        c.feed(self._suspect(7, 1))
        assert c.ok

    def test_resend_of_one_round_stays_contiguous(self):
        # Re-reporting the same round to an election winner is not a gap.
        c = InvariantChecker(lossless=False)
        c.feed(self._hb(5, 1))
        c.feed(self._hb(5, 1))
        c.feed(self._hb(5, 2))
        c.feed(self._suspect(5, 2))
        assert [v.invariant for v in c.violations] == ["no-false-eviction"]


class TestSeededDropIsCaught:
    """The end-to-end negative: one dropped notify flag deadlocks the
    baseline protocol, and the online checker names the exact write."""

    def test_dropped_flag_write_reported_as_lost_write(self):
        tracer = Tracer(enabled=True)
        plan = FaultPlan((FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=2),))
        chip = SccChip(SccConfig(mesh_cols=2, mesh_rows=2),
                       tracer=tracer, faults=FaultInjector(plan))
        checker = InvariantChecker(lossless=True).attach(chip)
        comm = Comm(chip)
        oc = OcBcast(comm, OcBcastConfig(k=3))
        nbytes = 8 * CACHE_LINE
        payload = bytes(i % 256 for i in range(nbytes))

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            if cc.rank == 0:
                buf.write(payload)
            yield from oc.bcast(cc, 0, buf, nbytes)

        with pytest.raises((DeadlockError, SimError)):
            run_spmd(chip, program)
        assert not checker.ok
        v = checker.violations[0]
        assert v.invariant == "lost-write"
        assert v.record.detail["landed"] == "dropped"
        assert chip.faults.n_injected == 1
        with pytest.raises(InvariantViolation):
            checker.check()


# ---------------------------------------------------------------------------
# CLI


class TestTraceCli:
    def test_trace_command_writes_valid_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics_csv = tmp_path / "metrics.csv"
        rc = cli_main(["trace", "--algo", "oc", "--k", "3",
                       "--cache-lines", "4", "-o", str(out),
                       "--metrics-out", str(metrics_csv)])
        assert rc == 0
        validate_chrome_trace(json.loads(out.read_text()))
        assert metrics_csv.read_text().startswith("metric,value")
        text = capsys.readouterr().out
        assert "invariants" in text and "OK" in text

    def test_trace_command_metrics_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics_json = tmp_path / "metrics.json"
        rc = cli_main(["trace", "--algo", "binomial", "--cache-lines", "2",
                       "-o", str(out), "--metrics-out", str(metrics_json)])
        assert rc == 0
        doc = json.loads(metrics_json.read_text())
        assert "counters" in doc and "gauges" in doc

    def test_bcast_metrics_flag(self, capsys):
        rc = cli_main(["bcast", "--algo", "oc", "--k", "3",
                       "--cache-lines", "4", "--iters", "1", "--metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sim.events_scheduled" in out
