"""Property tests for the chaos schedule generator (satellite: the
zero-invalid-draw guarantee).

The generator rejection-samples against :meth:`ChaosSchedule.validate`,
which routes through the :class:`repro.faults.FaultPlan` rules
(site-overlap rejection, adversary-core ranges, equivocation windows)
plus the transport-level layering.  These tests pin the contract across
200 seeds and both backends:

- every generated schedule re-validates (``FaultPlan`` construction
  included) -- no draw that merely slipped through;
- generation is deterministic: the same seed yields the same stream;
- schedules survive a JSON round trip unchanged (the repro-bundle
  substrate);
- structural bounds hold: event counts, mode/backend membership,
  intensity windows far under the watchdog, at most one crash.
"""

import pytest

from repro.chaos import BACKENDS, ChaosSchedule, ScheduleGenerator
from repro.chaos.generate import (
    _BURST_RANGE, _CHURN_GAP_RANGE, _FLAP_DURATION_RANGE, _FLAP_DUTY_RANGE,
    _FLAP_PERIOD_RANGE, _PAUSE_RANGE, _STALL_RANGE, _STORM_DURATION_RANGE,
    _STORM_STALL_RANGE, _SUSPICION_BOUND,
)
from repro.faults import ADVERSARY_KINDS, FaultKind

N_SEEDS = 200
#: Small meshes keep the profiling runs (memoised per coordinate) cheap.
MESHES = ((2, 2), (3, 2))


def _generate(seed: int, backend: str, n: int = 2) -> list[ChaosSchedule]:
    return ScheduleGenerator(
        seed=seed, backends=(backend,), meshes=MESHES,
    ).generate(n)


@pytest.mark.parametrize("backend", BACKENDS)
def test_every_generated_schedule_validates(backend):
    for seed in range(N_SEEDS):
        for schedule in _generate(seed, backend):
            plan = schedule.validate()  # raises on any rule breach
            assert plan.specs == schedule.specs
            assert schedule.backend == backend
            assert schedule.mode in ("service", "byz", "ft")


@pytest.mark.parametrize("backend", BACKENDS)
def test_generation_is_deterministic(backend):
    for seed in (0, 7, 199):
        assert _generate(seed, backend, n=6) == _generate(backend=backend,
                                                          seed=seed, n=6)


@pytest.mark.parametrize("backend", BACKENDS)
def test_json_round_trip_identity(backend):
    for seed in range(0, N_SEEDS, 5):
        for schedule in _generate(seed, backend):
            assert ChaosSchedule.from_json(schedule.to_json()) == schedule


def test_structural_bounds_hold():
    for seed in range(N_SEEDS):
        gen = ScheduleGenerator(seed=seed, meshes=MESHES)
        for schedule in gen.generate(2):
            assert 1 <= schedule.chunks <= gen.max_chunks
            # Injector specs and the crash share the event budget; a
            # lossy network model is one extra composite event on top.
            n_injector = len(schedule.specs) + (schedule.crash is not None)
            assert n_injector <= gen.max_events
            assert schedule.n_events <= gen.max_events + 1
            assert schedule.mesh in MESHES
            # At most one crash event of any flavour (a REPEATED_CRASH
            # is one churn *event*, though it kills two cores).
            n_crash = (schedule.crash is not None) + sum(
                s.kind in (FaultKind.CORE_CRASH, FaultKind.REPEATED_CRASH)
                for s in schedule.specs
            )
            assert n_crash <= 1
            for spec in schedule.specs:
                if spec.kind in ADVERSARY_KINDS:
                    assert schedule.mode == "byz"
                elif schedule.mode == "byz":
                    # Benign companions of adversaries stay under the
                    # vote rounds: no bursts/pauses silencing a voter.
                    assert spec.kind in (FaultKind.DROP_FLAG_WRITE,
                                         FaultKind.CORRUPT_FLAG_WRITE,
                                         FaultKind.LINK_STALL)
                if spec.kind is FaultKind.LINK_STALL:
                    assert _STALL_RANGE[0] <= spec.duration <= _STALL_RANGE[1]
                if spec.kind is FaultKind.LINK_DOWN:
                    assert _BURST_RANGE[0] <= spec.duration <= _BURST_RANGE[1]
                if spec.kind is FaultKind.CORE_PAUSE:
                    assert schedule.backend == "scc"
                    assert _PAUSE_RANGE[0] <= spec.duration <= _PAUSE_RANGE[1]
                # Sustained regimes: SCC-only, service mode only, and
                # every intensity stays inside the stock-suspicion
                # envelope the generator docstring promises.
                if spec.kind is FaultKind.FLAPPING_LINK:
                    assert schedule.backend == "scc"
                    assert schedule.mode == "service"
                    assert spec.duration <= _FLAP_DURATION_RANGE[1]
                    assert spec.duration <= 0.5 * _SUSPICION_BOUND
                    assert _FLAP_PERIOD_RANGE[0] <= spec.period \
                        <= _FLAP_PERIOD_RANGE[1]
                    assert spec.period <= spec.duration
                    assert _FLAP_DUTY_RANGE[0] <= spec.duty \
                        <= _FLAP_DUTY_RANGE[1]
                if spec.kind is FaultKind.REPEATED_CRASH:
                    assert schedule.backend == "scc"
                    assert schedule.mode == "service"
                    # Churn only where two evictions leave quorum slack.
                    assert 2 * schedule.mesh[0] * schedule.mesh[1] >= 8
                    assert spec.cycles == 2
                    assert _CHURN_GAP_RANGE[0] <= spec.period \
                        <= _CHURN_GAP_RANGE[1]
                    assert spec.period >= _SUSPICION_BOUND
                if spec.kind is FaultKind.CONGESTION_STORM:
                    assert schedule.backend == "scc"
                    assert schedule.mode == "service"
                    assert _STORM_DURATION_RANGE[0] <= spec.duration \
                        <= _STORM_DURATION_RANGE[1]
                    assert spec.duration <= _SUSPICION_BOUND
                    assert _STORM_STALL_RANGE[0] <= spec.period \
                        <= _STORM_STALL_RANGE[1]
            if schedule.model is not None:
                assert schedule.backend == "asyncio"
                if schedule.model.faulty:
                    assert schedule.mode == "service"
                if schedule.mode == "byz":
                    assert schedule.model.name == "none"
