"""Smoke tests: every shipped example runs to completion.

The heavyweight sweeps inside the examples are exercised by the
benchmarks; here we only assert that each script executes end to end
and prints its headline result -- catching API drift between the
library and its documentation surface.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

# (script, expected stdout fragment, rough time budget in seconds)
FAST_EXAMPLES = [
    ("quickstart.py", "broadcast", 120),
    ("model_validation.py", "fit residual RMS", 180),
    ("mpmd_pubsub.py", "all services saw every epoch", 120),
]


@pytest.mark.parametrize("script,fragment,budget", FAST_EXAMPLES)
def test_example_runs(script, fragment, budget):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=budget,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert fragment in result.stdout


def test_all_examples_present_and_executable_syntax():
    """Every example at least compiles (the slow ones are not executed
    here; the benchmarks cover their code paths)."""
    scripts = sorted(
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    )
    assert len(scripts) >= 7
    for script in scripts:
        path = os.path.join(EXAMPLES_DIR, script)
        with open(path) as fh:
            source = fh.read()
        compile(source, path, "exec")
        assert '"""' in source, f"{script} lacks a docstring"
        assert "__main__" in source, f"{script} lacks a main guard"
