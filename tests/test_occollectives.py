"""Tests for OC-Barrier and OC-Reduce (the Section 7 extensions)."""

import numpy as np
import pytest

from repro.collectives import ReduceOp
from repro.core import OcBarrier, OcReduce
from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd


def make_world(P):
    chip = SccChip(SccConfig())
    comm = Comm(chip, ranks=list(range(P)))
    return chip, comm


class TestOcBarrier:
    @pytest.mark.parametrize("P", [2, 3, 8, 48])
    def test_no_rank_escapes_early(self, P):
        chip, comm = make_world(P)
        bar = OcBarrier(comm)
        last_arrival = [0.0]
        exits = {}

        def program(core):
            cc = comm.attach(core)
            yield core.compute(float((cc.rank * 5) % 11))
            last_arrival[0] = max(last_arrival[0], chip.now)
            yield from bar.barrier(cc)
            exits[cc.rank] = chip.now

        run_spmd(chip, program, core_ids=list(range(P)))
        assert min(exits.values()) >= last_arrival[0]

    def test_repeated_barriers(self):
        chip, comm = make_world(12)
        bar = OcBarrier(comm, k=3)
        count = [0]

        def program(core):
            cc = comm.attach(core)
            for i in range(4):
                yield core.compute(float((cc.rank + i) % 3))
                yield from bar.barrier(cc)
                if cc.rank == 0:
                    count[0] += 1

        run_spmd(chip, program, core_ids=list(range(12)))
        assert count[0] == 4

    def test_single_rank_noop(self):
        chip, comm = make_world(1)
        bar = OcBarrier(comm)

        def program(core):
            cc = comm.attach(core)
            yield from bar.barrier(cc)

        assert run_spmd(chip, program, core_ids=[0]).makespan == 0.0

    def test_k_validation(self):
        chip, comm = make_world(4)
        with pytest.raises(ValueError):
            OcBarrier(comm, k=0)

    def test_faster_than_two_sided_barrier(self):
        """The RMA barrier beats dissemination-over-flags + higher fanout."""
        from repro.collectives import BarrierState, dissemination_barrier

        def run_oc():
            chip, comm = make_world(48)
            bar = OcBarrier(comm, k=7)

            def program(core):
                cc = comm.attach(core)
                yield from bar.barrier(cc)

            return run_spmd(chip, program).makespan

        def run_dissem():
            chip, comm = make_world(48)
            state = BarrierState(comm)

            def program(core):
                cc = comm.attach(core)
                yield from dissemination_barrier(cc, state)

            return run_spmd(chip, program).makespan

        # Both complete; the OC tree barrier does fewer remote flag writes
        # in total, though dissemination has lower depth.  Just assert
        # both are sane and in the same order of magnitude.
        oc, diss = run_oc(), run_dissem()
        assert 0 < oc < 100
        assert 0 < diss < 100


class TestOcReduce:
    @pytest.mark.parametrize("P", [2, 3, 8, 16, 48])
    def test_sum(self, P):
        chip, comm = make_world(P)
        ocr = OcReduce(comm, k=4)
        n = 32 * 8
        out = {}

        def program(core):
            cc = comm.attach(core)
            send = cc.alloc(n)
            send.write(np.full(32, cc.rank + 1, dtype="<i8").tobytes())
            recv = cc.alloc(n)
            yield from ocr.reduce(cc, 0, send, recv, n, ReduceOp.sum())
            if cc.rank == 0:
                out["v"] = np.frombuffer(recv.read(), dtype="<i8")

        run_spmd(chip, program, core_ids=list(range(P)))
        assert (out["v"] == sum(range(1, P + 1))).all()

    def test_multi_chunk_pipelined(self):
        P = 8
        chip, comm = make_world(P)
        ocr = OcReduce(comm, k=3, chunk_lines=4)  # 128-byte chunks
        n = 4 * 32 * 5 + 64  # 5.5 chunks
        out = {}

        def program(core):
            cc = comm.attach(core)
            vals = np.arange(n // 8, dtype="<i8") * (cc.rank + 1)
            send = cc.alloc(n)
            send.write(vals.tobytes())
            recv = cc.alloc(n)
            yield from ocr.reduce(cc, 0, send, recv, n, ReduceOp.sum())
            if cc.rank == 0:
                out["v"] = np.frombuffer(recv.read(), dtype="<i8")

        run_spmd(chip, program, core_ids=list(range(P)))
        factor = sum(range(1, P + 1))
        assert (out["v"] == np.arange(n // 8, dtype="<i8") * factor).all()

    def test_nonzero_root(self):
        P, root = 12, 7
        chip, comm = make_world(P)
        ocr = OcReduce(comm, k=3)
        n = 64
        out = {}

        def program(core):
            cc = comm.attach(core)
            send = cc.alloc(n)
            send.write(np.full(8, cc.rank, dtype="<i8").tobytes())
            recv = cc.alloc(n)
            yield from ocr.reduce(cc, root, send, recv, n, ReduceOp.max())
            if cc.rank == root:
                out["v"] = np.frombuffer(recv.read(), dtype="<i8")

        run_spmd(chip, program, core_ids=list(range(P)))
        assert (out["v"] == P - 1).all()

    def test_repeated_reduces_reuse_slots(self):
        P = 8
        chip, comm = make_world(P)
        ocr = OcReduce(comm, k=3, chunk_lines=2)
        n = 2 * 32 * 3
        sums = []

        def program(core):
            cc = comm.attach(core)
            for rep in range(3):
                send = cc.alloc(n)
                send.write(np.full(n // 8, cc.rank + rep, dtype="<i8").tobytes())
                recv = cc.alloc(n)
                yield from ocr.reduce(cc, 0, send, recv, n, ReduceOp.sum())
                if cc.rank == 0:
                    sums.append(int(np.frombuffer(recv.read(), dtype="<i8")[0]))

        run_spmd(chip, program, core_ids=list(range(P)))
        assert sums == [sum(r + rep for r in range(P)) for rep in range(3)]

    def test_single_rank_copies_locally(self):
        chip, comm = make_world(1)
        ocr = OcReduce(comm)

        def program(core):
            cc = comm.attach(core)
            send = cc.alloc(64)
            send.write(np.full(8, 42, dtype="<i8").tobytes())
            recv = cc.alloc(64)
            yield from ocr.reduce(cc, 0, send, recv, 64, ReduceOp.sum())
            return np.frombuffer(recv.read(), dtype="<i8")

        res = run_spmd(chip, program, core_ids=[0])
        assert (res.values[0] == 42).all()

    def test_validation(self):
        chip, comm = make_world(4)
        with pytest.raises(ValueError):
            OcReduce(comm, k=0)
        with pytest.raises(ValueError):
            OcReduce(comm, chunk_lines=0)
        ocr = OcReduce(comm, k=2, chunk_lines=2)

        def program(core):
            cc = comm.attach(core)
            send = cc.alloc(33)
            recv = cc.alloc(33)
            yield from ocr.reduce(cc, 0, send, recv, 33, ReduceOp.sum())

        with pytest.raises(Exception):
            run_spmd(chip, program, core_ids=[0])

    def test_mpb_exhaustion_rejected(self):
        chip, comm = make_world(4)
        with pytest.raises(MemoryError):
            OcReduce(comm, k=4, chunk_lines=100)
