"""Cross-validation: the analytic model against the simulator.

The simulator and the "complete" analytic formulas were written
independently against the same protocol; in IDEAL contention mode (no
queueing -- the regime the formulas assume) they must agree within the
slack of the model's simplifications (notification-chain rounding,
pipeline-fill terms).  These tests hold across message sizes, fan-outs
and world sizes, so a regression in either side shows up immediately.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import BcastSpec, run_broadcast
from repro.model import TABLE_1, ModelParams, broadcast
from repro.scc import ContentionMode, SccConfig

IDEAL = SccConfig(contention_mode=ContentionMode.IDEAL)
PARAMS = ModelParams.from_config(IDEAL)


def simulated_latency(spec: BcastSpec, m_lines: int) -> float:
    res = run_broadcast(spec, m_lines * 32, config=IDEAL, iters=1, warmup=0)
    assert res.verified
    return res.mean_latency


class TestOcBcastModelAgreement:
    @pytest.mark.parametrize("k", [2, 7, 47])
    @pytest.mark.parametrize("m", [1, 32, 96, 192])
    def test_complete_model_tracks_simulation(self, k, m):
        sim = simulated_latency(BcastSpec("oc", k=k), m)
        model = broadcast.ocbcast_latency_complete(48, m, k, PARAMS)
        assert model == pytest.approx(sim, rel=0.35), (k, m, sim, model)

    def test_model_orderings_match_simulation(self):
        """Even where absolute values drift, the k-orderings agree."""
        for m in (1, 96):
            sim = {k: simulated_latency(BcastSpec("oc", k=k), m) for k in (2, 7, 47)}
            model = {
                k: broadcast.ocbcast_latency_complete(48, m, k, PARAMS)
                for k in (2, 7, 47)
            }
            sim_order = sorted(sim, key=sim.get)
            model_order = sorted(model, key=model.get)
            assert sim_order == model_order, (m, sim, model)


class TestBinomialModelAgreement:
    @pytest.mark.parametrize("m", [1, 32, 96, 192])
    def test_complete_model_tracks_simulation(self, m):
        sim = simulated_latency(BcastSpec("binomial"), m)
        model = broadcast.binomial_latency_complete(48, m, PARAMS)
        assert model == pytest.approx(sim, rel=0.35), (m, sim, model)


class TestThroughputAgreement:
    def test_peak_throughput_model_vs_simulation(self):
        res = run_broadcast(
            BcastSpec("oc", k=7), 8192 * 32, config=IDEAL, iters=2, warmup=1
        )
        model = broadcast.ocbcast_throughput_complete(PARAMS, 7)
        assert res.steady_throughput_mb_s == pytest.approx(model, rel=0.15)

    def test_sag_throughput_model_vs_simulation(self):
        res = run_broadcast(
            BcastSpec("scatter_allgather"), 4096 * 32, config=IDEAL, iters=2, warmup=1
        )
        model = broadcast.scatter_allgather_throughput_complete(48, PARAMS)
        assert res.steady_throughput_mb_s == pytest.approx(model, rel=0.25)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    P=st.integers(4, 24),
    k=st.integers(2, 12),
    m=st.integers(1, 64),
)
def test_property_model_within_2x_of_simulation(P, k, m):
    """Coarse but universal: the complete model never drifts past 2x of
    the simulated latency for any small configuration."""
    cfg = IDEAL.with_()
    res = run_broadcast(
        BcastSpec("oc", k=k), m * 32, config=cfg, iters=1, warmup=0
    )
    # run_broadcast uses the full 48-core chip; model with P=48.
    model = broadcast.ocbcast_latency_complete(48, m, k, PARAMS)
    assert model < 2.0 * res.mean_latency
    assert res.mean_latency < 2.0 * model
