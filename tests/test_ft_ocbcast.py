"""Tests for fault-tolerant OC-Bcast and the fault-campaign harness.

The adversarial configuration throughout is a one-chunk (96 cache line)
message on the full 48-core chip: with monotonic sequence flags a
mid-stream dropped flag write is masked by the next chunk's write, so on
a single-chunk message *every* flag write is fatal to the baseline.
"""

import pytest

from repro.bench import FaultCampaign
from repro.bench.faultcampaign import parse_kinds
from repro.bench.reporting import format_fault_timeline
from repro.core import OcBcast, OcBcastConfig, PropagationTree
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.obs import InvariantChecker
from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd
from repro.scc.config import CACHE_LINE
from repro.sim import FaultInjected, Tracer

ONE_CHUNK = 96 * CACHE_LINE


def bcast_once(plan, *, ft, nbytes=ONE_CHUNK, watchdog=50_000.0):
    """One OC-Bcast on a fresh 48-core chip under ``plan``; returns the
    per-rank outcomes (True / False / 'crashed') and the injector.

    The ordering invariants (flag FIFO, notify-before-fetch, buffer-reuse
    handshake) are checked online even under injected faults -- FT mode
    must *recover* without ever reordering the protocol.  ``lossless`` is
    off because dropped/corrupted writes are the point of the plan.
    """
    injector = FaultInjector(plan)
    chip = SccChip(SccConfig(), tracer=Tracer(enabled=True), faults=injector)
    checker = InvariantChecker(lossless=False).attach(chip)
    comm = Comm(chip)
    oc = OcBcast(comm, OcBcastConfig(ft=ft))
    payload = bytes(i % 251 for i in range(nbytes))

    def prog(core):
        cc = comm.attach(core)
        buf = cc.alloc(nbytes)
        if cc.rank == 0:
            buf.write(payload)
        try:
            yield from oc.bcast(cc, 0, buf, nbytes)
        except FaultInjected:
            return "crashed"
        return buf.read() == payload

    if watchdog:
        chip.sim.start_watchdog(watchdog)
    res = run_spmd(chip, prog)
    checker.check()
    return res.values, injector


class TestFtDelivery:
    def test_ft_recovers_dropped_flag_write_where_baseline_deadlocks(self):
        plan = FaultPlan((FaultSpec(FaultKind.DROP_FLAG_WRITE, nth=20),))
        values, injector = bcast_once(plan, ft=True)
        assert all(v is True for v in values)
        assert injector.n_injected == 1 and injector.n_recovered >= 1
        # The identical plan wedges the baseline until the watchdog fires.
        campaign = FaultCampaign(trials=1)
        base_run, _ = campaign.run_one(plan, ft=False)
        assert base_run.outcome == "deadlock"

    def test_ft_recovers_corrupted_flag_write(self):
        plan = FaultPlan((FaultSpec(FaultKind.CORRUPT_FLAG_WRITE, nth=33),))
        values, injector = bcast_once(plan, ft=True)
        assert all(v is True for v in values)
        assert injector.n_recovered >= 1

    def test_ft_routes_around_a_crashed_leaf(self):
        tree = PropagationTree(48, 7, 0)
        leaf = max(r for r in range(48) if not tree.children_of(r))
        plan = FaultPlan((FaultSpec(FaultKind.CORE_CRASH, core=leaf, nth=3),))
        values, injector = bcast_once(plan, ft=True)
        assert values.count("crashed") == 1
        assert sum(1 for v in values if v is True) == 47
        assert injector.is_dead(leaf)

    def test_ft_with_data_acks_recovers_dropped_data_writes(self):
        campaign = FaultCampaign(
            trials=4,
            seed=2,
            kinds=(FaultKind.DROP_DATA_WRITE,),
            compare_baseline=False,
        )
        for plan in campaign.trial_plans():
            ft_run, _ = campaign.run_one(plan, ft=True)
            assert ft_run.outcome == "recovered", (plan.label, ft_run)
            base_run, _ = campaign.run_one(plan, ft=False)
            assert base_run.outcome == "corrupt", (plan.label, base_run)

    def test_ft_disabled_matches_baseline_protocol(self):
        # Without faults, FT off and on both deliver; off is the seed path.
        values, injector = bcast_once(FaultPlan(), ft=False)
        assert all(v is True for v in values)
        assert injector.n_injected == 0


class TestCampaignHarness:
    def test_small_campaign_ft_survives_where_baseline_deadlocks(self):
        result = FaultCampaign(trials=5, seed=7).run()
        assert result.n_trials == 5
        assert result.ft_counts["recovered"] == 5
        assert result.baseline_counts["deadlock"] == 5
        assert result.ft_survival_rate == 1.0
        assert result.timeline  # fault events captured for reporting
        assert "fault.injected" in format_fault_timeline(result.timeline)
        assert "robustness tax" in result.summary()

    def test_trial_plans_are_reproducible(self):
        campaign = FaultCampaign(trials=8, seed=3, compare_baseline=False)
        assert campaign.trial_plans() == campaign.trial_plans()
        other_seed = FaultCampaign(trials=8, seed=4, compare_baseline=False)
        assert campaign.trial_plans() != other_seed.trial_plans()

    def test_ft_robustness_tax_is_small(self):
        result = FaultCampaign(trials=1, compare_baseline=False).run()
        assert result.ft_overhead_pct < 5.0

    def test_parse_kinds(self):
        assert parse_kinds(["drop_flag", "crash"]) == (
            FaultKind.DROP_FLAG_WRITE,
            FaultKind.CORE_CRASH,
        )
        with pytest.raises(ValueError):
            parse_kinds(["nope"])


@pytest.mark.faults
class TestCampaignSmoke:
    """The 50-trial smoke campaign behind ``make faults`` / ``-m faults``."""

    def test_fifty_trial_mixed_campaign(self):
        result = FaultCampaign(
            trials=50,
            seed=1,
            kinds=parse_kinds(["drop_flag", "corrupt_flag", "crash"]),
        ).run()
        assert result.ft_counts["deadlock"] == 0
        assert result.ft_counts["corrupt"] == 0
        assert result.ft_survival_rate == 1.0
        # Flag faults (two thirds of trials) wedge the baseline every time.
        assert result.baseline_counts["deadlock"] >= 33
        assert result.ft_overhead_pct < 5.0
