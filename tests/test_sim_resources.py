"""Unit tests for FIFO/priority resources."""

import pytest

from repro.sim import Resource, Simulator, SimError


def test_uncontended_acquire_is_immediate():
    sim = Simulator()
    res = Resource(sim, name="r")

    def prog():
        waited = yield res.acquire()
        res.release()
        return waited

    p = sim.process(prog())
    sim.run()
    assert p.value == 0.0
    assert sim.now == 0.0


def test_fifo_ordering_under_contention():
    sim = Simulator()
    res = Resource(sim)
    grants = []

    def prog(tag):
        yield res.acquire()
        grants.append((tag, sim.now))
        yield sim.timeout(1.0)
        res.release()

    for i in range(4):
        sim.process(prog(i))
    sim.run()
    assert [g[0] for g in grants] == [0, 1, 2, 3]
    assert [g[1] for g in grants] == [0.0, 1.0, 2.0, 3.0]


def test_priority_overrides_fifo():
    sim = Simulator()
    res = Resource(sim)
    grants = []

    def holder():
        yield res.acquire()
        yield sim.timeout(1.0)
        res.release()

    def prog(tag, prio):
        # Arrive while the holder owns the slot.
        yield sim.timeout(0.5)
        yield res.acquire(priority=prio)
        grants.append(tag)
        yield sim.timeout(0.1)
        res.release()

    sim.process(holder())
    sim.process(prog("far", 9.0))
    sim.process(prog("near", 1.0))
    sim.process(prog("mid", 5.0))
    sim.run()
    assert grants == ["near", "mid", "far"]


def test_equal_priority_ties_break_fifo():
    sim = Simulator()
    res = Resource(sim)
    grants = []

    def holder():
        yield res.acquire()
        yield sim.timeout(1.0)
        res.release()

    def prog(tag):
        yield sim.timeout(0.5)
        yield res.acquire(priority=3.0)
        grants.append(tag)
        res.release()

    sim.process(holder())
    for i in range(3):
        sim.process(prog(i))
    sim.run()
    assert grants == [0, 1, 2]


def test_capacity_allows_parallel_holders():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    active = []
    peak = []

    def prog():
        yield res.acquire()
        active.append(1)
        peak.append(len(active))
        yield sim.timeout(1.0)
        active.pop()
        res.release()

    for _ in range(4):
        sim.process(prog())
    sim.run()
    assert max(peak) == 2
    assert sim.now == 2.0


def test_serve_reports_wait_time():
    sim = Simulator()
    res = Resource(sim)
    waits = []

    def prog():
        waited = yield from res.serve(hold=1.0)
        waits.append(waited)

    sim.process(prog())
    sim.process(prog())
    sim.run()
    assert waits == [0.0, 1.0]
    assert sim.now == 2.0


def test_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim, name="r")
    with pytest.raises(SimError):
        res.release()


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimError):
        Resource(sim, capacity=0)


def test_utilisation_statistics():
    sim = Simulator()
    res = Resource(sim)

    def prog():
        yield from res.serve(hold=2.0)
        yield sim.timeout(2.0)  # idle period
        yield from res.serve(hold=2.0)

    sim.process(prog())
    sim.run()
    assert sim.now == 6.0
    assert res.utilisation() == pytest.approx(4.0 / 6.0)
    assert res.total_acquisitions == 2


def test_queue_length_and_in_use():
    sim = Simulator()
    res = Resource(sim)
    seen = []

    def holder():
        yield res.acquire()
        yield sim.timeout(1.0)
        seen.append((res.in_use, res.queue_length))
        res.release()

    def waiter():
        yield sim.timeout(0.5)
        yield res.acquire()
        res.release()

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert seen == [(1, 1)]


def test_serve_releases_even_if_interrupted_mid_hold():
    sim = Simulator()
    res = Resource(sim)

    def victim():
        yield from res.serve(hold=100.0)

    proc = sim.process(victim())

    def killer():
        yield sim.timeout(1.0)
        proc.interrupt()

    def after():
        yield sim.timeout(2.0)
        waited = yield res.acquire()
        res.release()
        return waited

    sim.process(killer())
    a = sim.process(after())
    with pytest.raises(SimError):
        sim.run()  # the interrupt surfaces as a crash of the victim
    sim.run()
    assert a.value == 0.0  # slot was released by serve()'s finally
