"""Golden-trace pinning: whole-run behaviour digests.

Each scenario runs one deterministic broadcast with tracing enabled and
compares the sha256 of the canonical trace serialization
(:func:`repro.obs.canonical_trace`) against ``tests/golden_digests.json``.
A digest mismatch means *some* event moved, retimed, appeared or
vanished -- the strongest regression net the simulator offers, far
stricter than latency assertions.

If a change is intentional (a model refinement, a protocol fix),
re-record the goldens and commit the diff alongside the change:

    PYTHONPATH=src python tests/test_golden_traces.py --record

The test failure message says the same, so nobody has to find this
docstring first.
"""

import json
import pathlib
from dataclasses import replace

import pytest

from repro import Comm, SccChip, run_spmd
from repro.bench import BcastSpec, run_broadcast
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.member import OcBcastService
from repro.member.service import DEFAULT_SERVICE_OC
from repro.obs import trace_digest
from repro.scc import ContentionMode, SccConfig
from repro.scc.config import CACHE_LINE
from repro.sim import FaultInjected, Tracer

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_digests.json"


def _trace(spec: BcastSpec, cache_lines: int, config: SccConfig | None = None):
    tracer = Tracer(enabled=True)
    run_broadcast(
        spec, cache_lines * CACHE_LINE, config=config,
        iters=1, warmup=0, seed=1, tracer=tracer,
    )
    return tracer.records


def _rbc_equivocate_trace():
    """Byzantine broadcast end to end on a 12-core chip: the source
    equivocates on its first staging (deterministic minimal-delta
    restage), the echo quorum settles one digest, losing-side members
    re-fetch the winning bytes and every honest member delivers the same
    payload.  Pins the ECHO/READY vote fan-out, the quorum waits, the
    restage timing and the repair path -- the whole rbc wire protocol."""
    nbytes = 96 * CACHE_LINE
    payload = bytes(i % 251 for i in range(nbytes))
    plan = FaultPlan(
        (FaultSpec(FaultKind.EQUIVOCATE, core=0, nth=1, duration=1),),
        num_cores=12,
    )
    chip = SccChip(
        SccConfig(mesh_cols=3, mesh_rows=2),  # 12 cores
        faults=FaultInjector(plan),
        tracer=Tracer(enabled=True),
    )
    comm = Comm(chip)
    svc = OcBcastService(
        comm, oc_config=replace(DEFAULT_SERVICE_OC, byz=True)
    )

    def prog(core):
        cc = comm.attach(core)
        buf = cc.alloc(nbytes)
        if cc.rank == 0:
            buf.write(payload)
        return (yield from svc.bcast(cc, buf, nbytes))

    chip.sim.start_watchdog(50_000.0)
    run_spmd(chip, prog)
    return chip.tracer.records


def _election_trace():
    """Coordinator failover end to end on a 12-core chip: the root/source
    crashes mid-message (deterministic nth), survivors detect, elect,
    hand off the epoch and settle the message via the completion
    directive.  Pins detection timing, claim ordering, the handoff and
    the directive application -- the whole member/ wire protocol."""
    nbytes = 3 * 96 * CACHE_LINE
    payload = bytes(i % 251 for i in range(nbytes))
    plan = FaultPlan((FaultSpec(FaultKind.CORE_CRASH, core=0, nth=5),))
    chip = SccChip(
        SccConfig(mesh_cols=3, mesh_rows=2),  # 12 cores
        faults=FaultInjector(plan),
        tracer=Tracer(enabled=True),
    )
    comm = Comm(chip)
    svc = OcBcastService(comm)

    def prog(core):
        cc = comm.attach(core)
        buf = cc.alloc(nbytes)
        if cc.rank == 0:
            buf.write(payload)
        try:
            return (yield from svc.bcast(cc, buf, nbytes))
        except FaultInjected:
            return "crashed"

    chip.sim.start_watchdog(100_000.0)
    run_spmd(chip, prog)
    return chip.tracer.records


#: name -> zero-argument callable producing the scenario's trace records.
#: Every scenario is fully deterministic (fixed seed, no wall clock).
SCENARIOS = {
    # The paper's headline configuration: OC-Bcast, one 96-cache-line
    # chunk, the full 48-core chip, k=7.
    "oc_k7_48core_96cl": lambda: _trace(BcastSpec("oc", k=7), 96),
    # The two RCCE_comm baselines it is compared against (Section 6).
    "binomial_48core_96cl": lambda: _trace(BcastSpec("binomial"), 96),
    "scatter_allgather_48core_96cl": lambda: _trace(
        BcastSpec("scatter_allgather"), 96
    ),
    # EXACT contention mode with coalescing on: pins the fast path's
    # event stream, complementing the A/B equality tests.
    "oc_k7_exact_24cl": lambda: _trace(
        BcastSpec("oc", k=7), 24,
        SccConfig(contention_mode=ContentionMode.EXACT),
    ),
    # Coordinator failover: seeded root crash on 12 cores, election +
    # epoch handoff + message completion (FAULTS.md section 6).
    "election_root_crash_12core": _election_trace,
    # Byzantine broadcast: seeded source equivocation on 12 cores,
    # Bracha echo/ready quorums + losing-side repair (FAULTS.md
    # adversary model, PROTOCOLS.md section 11).
    "rbc_equivocate_12core": _rbc_equivocate_trace,
}


def _load_goldens() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} missing -- record it with:\n"
            "  PYTHONPATH=src python tests/test_golden_traces.py --record"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_digest(name):
    golden = _load_goldens()
    assert name in golden, (
        f"no golden recorded for {name!r} -- re-record with:\n"
        "  PYTHONPATH=src python tests/test_golden_traces.py --record"
    )
    records = SCENARIOS[name]()
    got = trace_digest(records)
    assert got == golden[name], (
        f"golden trace drifted for {name!r}:\n"
        f"  recorded {golden[name]}\n"
        f"  current  {got}\n"
        f"  ({len(records)} trace records)\n"
        "An event moved, appeared or vanished.  If this change is "
        "intentional, re-record and commit the goldens:\n"
        "  PYTHONPATH=src python tests/test_golden_traces.py --record"
    )


def test_goldens_have_no_orphans():
    """Every recorded digest corresponds to a live scenario."""
    assert set(_load_goldens()) == set(SCENARIOS)


def _record() -> None:
    digests = {}
    for name in sorted(SCENARIOS):
        records = SCENARIOS[name]()
        digests[name] = trace_digest(records)
        print(f"{name}: {digests[name]} ({len(records)} records)")
    GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--record" in sys.argv:
        _record()
    else:
        print(__doc__)
        sys.exit(2)
