"""Tests for the tracing facility."""

from repro.sim import TraceRecord, Tracer


class TestTracer:
    def test_disabled_by_default_records_nothing(self):
        t = Tracer()
        t.emit(1.0, "src", "kind", a=1)
        assert len(t) == 0

    def test_enabled_records(self):
        t = Tracer(enabled=True)
        t.emit(1.0, "core0", "put", n=32)
        t.emit(2.0, "core1", "get", n=64)
        assert len(t) == 2
        assert t.records[0].time == 1.0
        assert t.records[1].detail == {"n": 64}

    def test_of_kind_and_from_source(self):
        t = Tracer(enabled=True)
        t.emit(1.0, "a", "put")
        t.emit(2.0, "b", "get")
        t.emit(3.0, "a", "get")
        assert len(t.of_kind("get")) == 2
        assert len(t.from_source("a")) == 2
        assert t.of_kind("put")[0].source == "a"

    def test_filters(self):
        t = Tracer(enabled=True)
        t.add_filter(lambda rec: rec.kind == "keep")
        t.emit(1.0, "s", "keep")
        t.emit(2.0, "s", "drop")
        assert [r.kind for r in t] == ["keep"]

    def test_clear(self):
        t = Tracer(enabled=True)
        t.emit(1.0, "s", "k")
        t.clear()
        assert len(t) == 0

    def test_record_str(self):
        rec = TraceRecord(1.5, "core0", "put", {"n": 32})
        s = str(rec)
        assert "core0" in s and "put" in s and "n=32" in s

    def test_iteration(self):
        t = Tracer(enabled=True)
        for i in range(3):
            t.emit(float(i), "s", "k", i=i)
        assert [r.detail["i"] for r in t] == [0, 1, 2]
