"""Coverage for smaller public surfaces not exercised elsewhere."""

import pytest

from repro import Comm, SccChip, SccConfig, run_spmd
from repro.rcce.flags import FlagValue
from repro.scc import ContentionMode
from repro.scc.core import lines_of


class TestLinesOf:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [(0, 0), (1, 1), (31, 1), (32, 1), (33, 2), (96, 3), (3072, 96)],
    )
    def test_rounding(self, nbytes, expected):
        assert lines_of(nbytes) == expected


class TestCommUtilities:
    def test_reset_mpb_zeroes_participants_only(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=[0, 1, 2])
        chip.mpbs[0].write_bytes(100, b"\xff" * 8)
        chip.mpbs[5].write_bytes(100, b"\xee" * 8)  # outside the comm
        comm.reset_mpb()
        assert chip.mpbs[0].read_bytes(100, 8) == bytes(8)
        assert chip.mpbs[5].read_bytes(100, 8) == b"\xee" * 8

    def test_twosided_state_is_singleton_per_comm(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip)
        assert comm.twosided is comm.twosided

    def test_wait_flag_at_least(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip)
        f = comm.flag("t")
        woke = {}

        def waiter(core):
            cc = comm.attach(core)
            yield from cc.wait_flag_at_least(f, tag=9, seq=5)
            woke["t"] = chip.now

        def setter(core):
            cc = comm.attach(core)
            yield core.compute(3.0)
            yield from cc.flag_set(0, f, FlagValue(9, 4))  # tag ok, seq low
            yield core.compute(3.0)
            yield from cc.flag_set(0, f, FlagValue(9, 7))  # satisfies

        run_spmd(chip, lambda c: waiter(c) if c.id == 0 else setter(c),
                 core_ids=[0, 1])
        assert woke["t"] > 6.0

    def test_local_copy_moves_bytes_and_time(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip)

        def prog(core):
            cc = comm.attach(core)
            a = cc.alloc(128)
            b = cc.alloc(128)
            a.write(bytes(range(128)))
            t0 = chip.now
            yield from cc.local_copy(b, a, 128)
            return b.read(), chip.now - t0

        res = run_spmd(chip, prog, core_ids=[0])
        data, elapsed = res.values[0]
        assert data == bytes(range(128))
        assert elapsed > 0

    def test_local_copy_validation(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip)
        foreign = chip.cores[1].mem.alloc(64)

        def prog(core):
            cc = comm.attach(core)
            mine = cc.alloc(64)
            yield from cc.local_copy(mine, foreign, 64)

        with pytest.raises(Exception):
            run_spmd(chip, prog, core_ids=[0])


class TestExactModeOnesided:
    def test_interleaved_put_moves_correct_bytes(self):
        chip = SccChip(SccConfig(contention_mode=ContentionMode.EXACT))
        comm = Comm(chip)
        region = comm.layout.alloc_lines(4)
        payload = bytes(range(100))

        def prog(core):
            cc = comm.attach(core)
            src = cc.alloc(100)
            src.write(payload)
            yield from cc.put(9, region.offset, src, 100)

        run_spmd(chip, prog, core_ids=[0])
        assert chip.mpbs[9].read_bytes(region.offset, 100) == payload

    def test_exact_mode_port_sees_per_line_accesses(self):
        chip = SccChip(SccConfig(contention_mode=ContentionMode.EXACT))
        comm = Comm(chip)
        region = comm.layout.alloc_lines(8)

        def prog(core):
            cc = comm.attach(core)
            yield from cc.get(9, region.offset, region.offset, 8 * 32)

        run_spmd(chip, prog, core_ids=[0])
        # 8 read acquisitions at the source; 8 writes at the local MPB.
        assert chip.mpbs[9].port.total_acquisitions == 8
        assert chip.mpbs[0].port.total_acquisitions == 8

    def test_batch_mode_port_sees_one_acquisition(self):
        chip = SccChip(SccConfig(contention_mode=ContentionMode.BATCH))
        comm = Comm(chip)
        region = comm.layout.alloc_lines(8)

        def prog(core):
            cc = comm.attach(core)
            yield from cc.get(9, region.offset, region.offset, 8 * 32)

        run_spmd(chip, prog, core_ids=[0])
        assert chip.mpbs[9].port.total_acquisitions == 1


class TestJitterDeterminism:
    def test_jittered_runs_reproduce_exactly(self):
        def one_run():
            chip = SccChip(SccConfig(jitter=0.05, seed=123))
            comm = Comm(chip)
            region = comm.layout.alloc_lines(16)

            def prog(core):
                cc = comm.attach(core)
                for _ in range(5):
                    yield from cc.get(40, region.offset, region.offset, 16 * 32)

            return run_spmd(chip, prog, core_ids=[0, 1, 2]).end_time

        assert one_run() == one_run()

    def test_different_seeds_differ(self):
        def one_run(seed):
            chip = SccChip(SccConfig(jitter=0.05, seed=seed))
            comm = Comm(chip)
            region = comm.layout.alloc_lines(16)

            def prog(core):
                cc = comm.attach(core)
                yield from cc.get(40, region.offset, region.offset, 16 * 32)

            return run_spmd(chip, prog, core_ids=[0]).end_time

        assert one_run(1) != one_run(2)


class TestMeshLinkTransfer:
    def test_transfer_packet_occupies_each_link_once(self):
        chip = SccChip(SccConfig(model_links=True))
        mesh = chip.mesh

        def prog():
            yield from mesh.transfer_packet((0, 0), (2, 1))

        chip.sim.process(prog())
        chip.sim.run()
        for a, b in mesh.path_links((0, 0), (2, 1)):
            assert mesh.link(a, b).total_acquisitions == 1

    def test_self_transfer_touches_no_links(self):
        chip = SccChip(SccConfig(model_links=True))

        def prog():
            yield from chip.mesh.transfer_packet((1, 1), (1, 1))
            yield chip.sim.timeout(0.0)

        chip.sim.process(prog())
        chip.sim.run()
        assert all(
            l.total_acquisitions == 0 for l in chip.mesh._links.values()
        )
