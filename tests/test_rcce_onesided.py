"""Tests for one-sided put/get: data integrity and Formula 7-12 timing."""

import pytest

from repro.model import ModelParams, primitives
from repro.rcce import Comm
from repro.scc import ContentionMode, SccChip, SccConfig, run_spmd
from repro.scc.config import CACHE_LINE


def make_world(**cfg):
    chip = SccChip(SccConfig(**cfg))
    return chip, Comm(chip)


def run_one(chip, comm, core_id, body):
    out = {}

    def prog(core):
        cc = comm.attach(core)
        t0 = chip.now
        result = yield from body(cc)
        out["elapsed"] = chip.now - t0
        out["result"] = result
        return None

    run_spmd(chip, prog, core_ids=[core_id])
    return out


class TestDataMovement:
    def test_put_mem_to_remote_mpb(self):
        chip, comm = make_world()
        region = comm.layout.alloc_lines(4)
        payload = bytes(range(128))

        def body(cc):
            src = cc.alloc(128)
            src.write(payload)
            yield from cc.put(9, region.offset, src, 128)

        run_one(chip, comm, 0, body)
        assert chip.mpbs[9].read_bytes(region.offset, 128) == payload

    def test_put_own_mpb_to_remote_mpb(self):
        chip, comm = make_world()
        region = comm.layout.alloc_lines(2)
        payload = bytes(range(64))
        chip.mpbs[0].write_bytes(region.offset, payload)

        def body(cc):
            yield from cc.put(7, region.offset, region.offset, 64)

        run_one(chip, comm, 0, body)
        assert chip.mpbs[7].read_bytes(region.offset, 64) == payload

    def test_get_remote_mpb_to_mem(self):
        chip, comm = make_world()
        region = comm.layout.alloc_lines(4)
        payload = bytes(reversed(range(128)))
        chip.mpbs[5].write_bytes(region.offset, payload)

        def body(cc):
            dst = cc.alloc(128)
            yield from cc.get(5, region.offset, dst, 128)
            return dst.read()

        out = run_one(chip, comm, 0, body)
        assert out["result"] == payload

    def test_get_remote_mpb_to_own_mpb(self):
        chip, comm = make_world()
        region = comm.layout.alloc_lines(2)
        payload = b"\xab" * 64
        chip.mpbs[5].write_bytes(region.offset, payload)

        def body(cc):
            yield from cc.get(5, region.offset, region.offset, 64)

        run_one(chip, comm, 0, body)
        assert chip.mpbs[0].read_bytes(region.offset, 64) == payload

    def test_partial_line_transfer_preserves_exact_bytes(self):
        chip, comm = make_world()
        region = comm.layout.alloc_lines(2)
        payload = b"hello-partial-line!"  # 19 bytes

        def body(cc):
            src = cc.alloc(len(payload))
            src.write(payload)
            yield from cc.put(3, region.offset, src, len(payload))

        run_one(chip, comm, 0, body)
        assert chip.mpbs[3].read_bytes(region.offset, len(payload)) == payload

    def test_put_to_self_mpb(self):
        chip, comm = make_world()
        region = comm.layout.alloc_lines(1)
        payload = b"x" * 32

        def body(cc):
            src = cc.alloc(32)
            src.write(payload)
            yield from cc.put(cc.rank, region.offset, src, 32)

        run_one(chip, comm, 0, body)
        assert chip.mpbs[0].read_bytes(region.offset, 32) == payload


class TestTimingMatchesModel:
    """In IDEAL mode the simulator must equal Formulas 7-12 exactly."""

    @pytest.mark.parametrize("m", [1, 4, 16])
    @pytest.mark.parametrize("target", [1, 13, 46])
    def test_put_mpb_completion(self, m, target):
        chip, comm = make_world(contention_mode=ContentionMode.IDEAL)
        p = ModelParams.from_config(chip.config)
        region = comm.layout.alloc_lines(m)
        d = chip.mesh.core_distance(0, target)

        def body(cc):
            yield from cc.put(target, region.offset, region.offset, m * CACHE_LINE)

        out = run_one(chip, comm, 0, body)
        assert out["elapsed"] == pytest.approx(primitives.c_put_mpb(p, m, d))

    @pytest.mark.parametrize("m", [1, 8])
    @pytest.mark.parametrize("source", [1, 46])
    def test_get_mpb_completion(self, m, source):
        chip, comm = make_world(contention_mode=ContentionMode.IDEAL)
        p = ModelParams.from_config(chip.config)
        region = comm.layout.alloc_lines(m)
        d = chip.mesh.core_distance(0, source)

        def body(cc):
            yield from cc.get(source, region.offset, region.offset, m * CACHE_LINE)

        out = run_one(chip, comm, 0, body)
        assert out["elapsed"] == pytest.approx(primitives.c_get_mpb(p, m, d))

    @pytest.mark.parametrize("m", [1, 8])
    def test_put_mem_completion(self, m):
        chip, comm = make_world(contention_mode=ContentionMode.IDEAL)
        p = ModelParams.from_config(chip.config)
        region = comm.layout.alloc_lines(m)
        target = 1
        d_dst = chip.mesh.core_distance(0, target)
        d_src = chip.mesh.mem_distance(0)

        def body(cc):
            src = cc.alloc(m * CACHE_LINE)
            yield from cc.put(target, region.offset, src, m * CACHE_LINE)

        out = run_one(chip, comm, 0, body)
        assert out["elapsed"] == pytest.approx(primitives.c_put_mem(p, m, d_src, d_dst))

    @pytest.mark.parametrize("m", [1, 8])
    def test_get_mem_completion(self, m):
        chip, comm = make_world(contention_mode=ContentionMode.IDEAL)
        p = ModelParams.from_config(chip.config)
        region = comm.layout.alloc_lines(m)
        source = 1
        d_src = chip.mesh.core_distance(0, source)
        d_dst = chip.mesh.mem_distance(0)

        def body(cc):
            dst = cc.alloc(m * CACHE_LINE)
            yield from cc.get(source, region.offset, dst, m * CACHE_LINE)

        out = run_one(chip, comm, 0, body)
        assert out["elapsed"] == pytest.approx(primitives.c_get_mem(p, m, d_src, d_dst))

    def test_batch_mode_matches_ideal_when_uncontended(self):
        times = {}
        for mode in (ContentionMode.IDEAL, ContentionMode.BATCH, ContentionMode.EXACT):
            chip, comm = make_world(contention_mode=mode)
            region = comm.layout.alloc_lines(8)

            def body(cc):
                yield from cc.get(20, region.offset, region.offset, 8 * CACHE_LINE)

            times[mode] = run_one(chip, comm, 0, body)["elapsed"]
        assert times[ContentionMode.BATCH] == pytest.approx(times[ContentionMode.IDEAL])
        assert times[ContentionMode.EXACT] == pytest.approx(times[ContentionMode.IDEAL])

    def test_distance_spread_1_to_9_hops_is_small(self):
        """Paper Section 3.2: 1-hop vs 9-hop differ by only ~30%."""
        chip, comm = make_world(contention_mode=ContentionMode.IDEAL)
        region = comm.layout.alloc_lines(16)
        times = {}
        for target_d in (1, 9):
            target = next(
                c for c in range(1, 48) if chip.mesh.core_distance(0, c) == target_d
            )
            chip2, comm2 = make_world(contention_mode=ContentionMode.IDEAL)
            region2 = comm2.layout.alloc_lines(16)

            def body(cc, t=comm2.rank_of(target)):
                yield from cc.get(t, region2.offset, region2.offset, 16 * CACHE_LINE)

            times[target_d] = run_one(chip2, comm2, 0, body)["elapsed"]
        spread = times[9] / times[1] - 1
        assert 0.1 < spread < 0.4


class TestValidation:
    def test_put_foreign_memref_rejected(self):
        chip, comm = make_world()
        region = comm.layout.alloc_lines(1)
        foreign = chip.cores[3].mem.alloc(32)

        def body(cc):
            yield from cc.put(1, region.offset, foreign, 32)

        with pytest.raises(Exception):
            run_one(chip, comm, 0, body)

    def test_put_oversized_from_buffer_rejected(self):
        chip, comm = make_world()
        region = comm.layout.alloc_lines(4)

        def body(cc):
            src = cc.alloc(32)
            yield from cc.put(1, region.offset, src, 64)

        with pytest.raises(Exception):
            run_one(chip, comm, 0, body)

    def test_zero_bytes_is_noop(self):
        chip, comm = make_world()
        region = comm.layout.alloc_lines(1)

        def body(cc):
            src = cc.alloc(32)
            yield from cc.put(1, region.offset, src, 0)

        out = run_one(chip, comm, 0, body)
        assert out["elapsed"] == 0.0

    def test_negative_bytes_rejected(self):
        chip, comm = make_world()

        def body(cc):
            src = cc.alloc(32)
            yield from cc.put(1, 0, src, -5)

        with pytest.raises(Exception):
            run_one(chip, comm, 0, body)
