"""Tests for non-blocking send/recv with explicit progress."""

import pytest

from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd


def make_world(P=48):
    chip = SccChip(SccConfig())
    return chip, Comm(chip)


class TestBasics:
    def test_pair_transfer(self):
        chip, comm = make_world()
        payload = bytes(i % 256 for i in range(1000))
        got = {}

        def prog(core):
            cc = comm.attach(core)
            buf = cc.alloc(1000)
            if cc.rank == 0:
                buf.write(payload)
                req = cc.isend(1, buf, 1000)
            else:
                req = cc.irecv(0, buf, 1000)
            yield from cc.wait_all([req])
            assert req.done
            got[cc.rank] = buf.read()

        run_spmd(chip, prog, core_ids=[0, 1])
        assert got[1] == payload

    def test_multi_chunk_transfer(self):
        chip, comm = make_world()
        n = comm.twosided.payload_bytes * 3 + 100
        payload = bytes((i * 7) % 256 for i in range(n))
        got = {}

        def prog(core):
            cc = comm.attach(core)
            buf = cc.alloc(n)
            if cc.rank == 0:
                buf.write(payload)
                yield from cc.wait_all([cc.isend(1, buf, n)])
            else:
                yield from cc.wait_all([cc.irecv(0, buf, n)])
                got["d"] = buf.read()

        run_spmd(chip, prog, core_ids=[0, 1])
        assert got["d"] == payload

    def test_all_neighbours_exchange_without_parity_schedule(self):
        """The payoff: simultaneous bidirectional halo exchange with no
        even/odd ordering; whichever peer is ready first is served."""
        chip, comm = make_world()
        P, n = 8, 256
        got = {}

        def prog(core):
            cc = comm.attach(core)
            me = cc.rank
            if me >= P:
                return
            up, down = (me - 1) % P, (me + 1) % P
            mine = cc.alloc(n)
            mine.write(bytes([me + 1]) * n)
            rup, rdown = cc.alloc(n), cc.alloc(n)
            yield core.compute(float(me * 13 % 7))  # desynchronise arrivals
            reqs = [
                cc.irecv(up, rup, n),
                cc.irecv(down, rdown, n),
                cc.isend(up, mine, n),
                cc.isend(down, mine, n),
            ]
            yield from cc.wait_all(reqs)
            got[me] = (rup.read(), rdown.read())

        run_spmd(chip, prog, core_ids=list(range(P)))
        for me in range(P):
            assert got[me][0] == bytes([(me - 1) % P + 1]) * n
            assert got[me][1] == bytes([(me + 1) % P + 1]) * n

    def test_matches_blocking_results(self):
        chip, comm = make_world()
        payload = bytes(range(200))
        got = {}

        def prog(core):
            cc = comm.attach(core)
            buf = cc.alloc(200)
            if cc.rank == 0:
                buf.write(payload)
                yield from cc.wait_all([cc.isend(1, buf, 200)])
                buf2 = cc.alloc(200)
                buf2.write(payload[::-1])
                yield from cc.send(1, buf2, 200)  # blocking after nb drained
            else:
                yield from cc.wait_all([cc.irecv(0, buf, 200)])
                buf2 = cc.alloc(200)
                yield from cc.recv(0, buf2, 200)
                got["nb"] = buf.read()
                got["b"] = buf2.read()

        run_spmd(chip, prog, core_ids=[0, 1])
        assert got["nb"] == payload
        assert got["b"] == payload[::-1]


class TestOrderingAndChaining:
    def test_two_isends_same_pair_arrive_in_posting_order(self):
        chip, comm = make_world()
        got = []

        def prog(core):
            cc = comm.attach(core)
            if cc.rank == 0:
                a = cc.alloc(64)
                a.write(b"A" * 64)
                b = cc.alloc(64)
                b.write(b"B" * 64)
                yield from cc.wait_all([cc.isend(1, a, 64), cc.isend(1, b, 64)])
            else:
                r1, r2 = cc.alloc(64), cc.alloc(64)
                yield from cc.wait_all([cc.irecv(0, r1, 64), cc.irecv(0, r2, 64)])
                got.append(r1.read()[:1])
                got.append(r2.read()[:1])

        run_spmd(chip, prog, core_ids=[0, 1])
        assert got == [b"A", b"B"]

    def test_send_chain_does_not_corrupt_payload_buffer(self):
        """Send i+1 must not stage before send i is acked (shared staging
        buffer); verified by distinct payloads to distinct receivers."""
        chip, comm = make_world()
        got = {}

        def prog(core):
            cc = comm.attach(core)
            if cc.rank == 0:
                reqs = []
                bufs = []
                for dst in (1, 2, 3):
                    b = cc.alloc(300)
                    b.write(bytes([dst * 11]) * 300)
                    bufs.append(b)
                    reqs.append(cc.isend(dst, b, 300))
                yield from cc.wait_all(reqs)
            else:
                # Receivers enter at very different times.
                yield core.compute(float(cc.rank * 50))
                buf = cc.alloc(300)
                yield from cc.recv(0, buf, 300)
                got[cc.rank] = buf.read()

        run_spmd(chip, prog, core_ids=[0, 1, 2, 3])
        assert got == {d: bytes([d * 11]) * 300 for d in (1, 2, 3)}

    def test_wait_all_requires_owner(self):
        chip, comm = make_world()
        reqs = {}

        def prog(core):
            cc = comm.attach(core)
            if cc.rank == 0:
                buf = cc.alloc(32)
                reqs["r"] = cc.irecv(1, buf, 32)
                yield core.compute(1.0)
            else:
                yield core.compute(0.5)
                with pytest.raises(ValueError):
                    cc.wait_all([reqs["r"]]).send(None)
                buf = cc.alloc(32)
                yield from cc.send(0, buf, 32)
                # Let rank 0 drain its posted irecv.

        def prog0_finish(core):
            cc = comm.attach(core)
            yield from prog(core)
            if cc.rank == 0:
                yield from cc.wait_all([reqs["r"]])

        run_spmd(chip, prog0_finish, core_ids=[0, 1])


class TestOverlapBenefit:
    def test_nonblocking_beats_mis_scheduled_blocking(self):
        """A rank that blocks on its slower neighbour first pays the wait;
        wait_all serves whichever arrives first."""

        def measure(nonblocking):
            chip, comm = make_world()
            finish = {}

            def prog(core):
                cc = comm.attach(core)
                n = 1024
                if cc.rank == 0:
                    fast = cc.alloc(n)
                    slow = cc.alloc(n)
                    if nonblocking:
                        yield from cc.wait_all(
                            [cc.irecv(1, slow, n), cc.irecv(2, fast, n)]
                        )
                    else:
                        # Unlucky ordering: wait for the slow peer first.
                        yield from cc.recv(1, slow, n)
                        yield from cc.recv(2, fast, n)
                    finish["t"] = chip.now
                elif cc.rank == 1:
                    yield core.compute(500.0)  # slow producer
                    buf = cc.alloc(n)
                    yield from cc.send(0, buf, n)
                else:
                    buf = cc.alloc(n)
                    yield from cc.send(0, buf, n)

            run_spmd(chip, prog, core_ids=[0, 1, 2])
            return finish["t"]

        nb, blocking = measure(True), measure(False)
        # The fast peer's transfer hides inside the slow peer's delay.
        assert nb < blocking - 10.0


class TestValidation:
    def test_self_transfer_rejected(self):
        chip, comm = make_world()

        def prog(core):
            cc = comm.attach(core)
            buf = cc.alloc(32)
            with pytest.raises(ValueError):
                cc.isend(0, buf, 32)
            with pytest.raises(ValueError):
                cc.irecv(0, buf, 32)
            yield core.compute(0.1)

        run_spmd(chip, prog, core_ids=[0])

    def test_negative_size_rejected(self):
        chip, comm = make_world()

        def prog(core):
            cc = comm.attach(core)
            buf = cc.alloc(32)
            with pytest.raises(ValueError):
                cc.isend(1, buf, -1)
            yield core.compute(0.1)

        run_spmd(chip, prog, core_ids=[0])
