"""Tests for MPB flags: encoding, atomic set, polling waits."""

import pytest

from repro.rcce import Comm
from repro.rcce.flags import Flag, FlagValue
from repro.rcce.layout import MpbRegion
from repro.scc import SccChip, SccConfig, run_spmd


@pytest.fixture()
def world():
    chip = SccChip(SccConfig())
    return chip, Comm(chip)


class TestFlagValue:
    def test_encode_decode_roundtrip(self):
        v = FlagValue(tag=12345, seq=-7)
        assert FlagValue.decode(v.encode()) == v

    def test_encoding_is_one_cache_line(self):
        assert len(FlagValue(1, 2).encode()) == 32

    def test_large_sequence_numbers(self):
        v = FlagValue(tag=2**40, seq=2**50)
        assert FlagValue.decode(v.encode()) == v

    def test_ordering(self):
        assert FlagValue(0, 1) < FlagValue(0, 2) < FlagValue(1, 0)


class TestFlag:
    def test_flag_must_be_one_line(self):
        with pytest.raises(ValueError):
            Flag(MpbRegion(0, 64))

    def test_peek_poke(self, world):
        chip, comm = world
        f = comm.flag("t")
        f.poke(chip, 3, FlagValue(9, 9))
        assert f.peek(chip, 3) == FlagValue(9, 9)
        assert f.peek(chip, 4) == FlagValue(0, 0)  # other core untouched


class TestFlagOps:
    def test_flag_set_visible_at_owner(self, world):
        chip, comm = world
        f = comm.flag("t")

        def setter(core):
            cc = comm.attach(core)
            yield from cc.flag_set(5, f, FlagValue(core.id, 42))

        run_spmd(chip, setter, core_ids=[0])
        assert f.peek(chip, 5) == FlagValue(0, 42)

    def test_flag_set_takes_time(self, world):
        chip, comm = world
        f = comm.flag("t")

        def setter(core):
            cc = comm.attach(core)
            yield from cc.flag_set(5, f, FlagValue(0, 1))

        res = run_spmd(chip, setter, core_ids=[0])
        cfg = chip.config
        d = chip.mesh.core_distance(0, 5)
        expected = cfg.o_put_mpb + cfg.o_mpb + 2 * d * cfg.l_hop
        assert res.makespan == pytest.approx(expected)

    def test_wait_returns_immediately_if_already_set(self, world):
        chip, comm = world
        f = comm.flag("t")
        f.poke(chip, 0, FlagValue(1, 5))

        def waiter(core):
            cc = comm.attach(core)
            yield from cc.wait_flags([f], lambda v: v[0].seq >= 5)

        res = run_spmd(chip, waiter, core_ids=[0])
        # Only the entry poll cost, no watcher sleep.
        assert res.makespan == pytest.approx(chip.config.t_poll)

    def test_wait_wakes_on_remote_set(self, world):
        chip, comm = world
        f = comm.flag("t")
        wake_time = []

        def waiter(core):
            cc = comm.attach(core)
            yield from cc.wait_flags([f], lambda v: v[0].seq >= 1)
            wake_time.append(chip.now)

        def setter(core):
            cc = comm.attach(core)
            yield core.compute(10.0)
            yield from cc.flag_set(0, f, FlagValue(7, 1))

        run_spmd(chip, lambda c: waiter(c) if c.id == 0 else setter(c), core_ids=[0, 1])
        assert wake_time[0] > 10.0
        # Detection delay is bounded by 1.5 sweeps of a single flag + write.
        assert wake_time[0] < 12.0

    def test_wait_multiple_flags_all_predicate(self, world):
        chip, comm = world
        flags = [comm.flag(f"t{i}") for i in range(3)]
        done = []

        def waiter(core):
            cc = comm.attach(core)
            yield from cc.wait_flags(flags, lambda vs: all(v.seq >= 1 for v in vs))
            done.append(chip.now)

        def setter(core):
            cc = comm.attach(core)
            for i, f in enumerate(flags):
                yield core.compute(5.0)
                yield from cc.flag_set(0, f, FlagValue(0, 1))

        run_spmd(chip, lambda c: waiter(c) if c.id == 0 else setter(c), core_ids=[0, 1])
        assert done[0] > 15.0  # needs the third set at t=15+

    def test_wait_flag_equals_exact_match(self, world):
        chip, comm = world
        f = comm.flag("t")
        order = []

        def waiter(core):
            cc = comm.attach(core)
            yield from cc.wait_flag_equals(f, FlagValue(2, 2))
            order.append("woke")

        def setter(core):
            cc = comm.attach(core)
            yield from cc.flag_set(0, f, FlagValue(2, 1))  # not a match
            yield core.compute(5.0)
            yield from cc.flag_set(0, f, FlagValue(2, 2))  # match

        run_spmd(chip, lambda c: waiter(c) if c.id == 0 else setter(c), core_ids=[0, 2])
        assert order == ["woke"]

    def test_detection_delay_scales_with_sweep_size(self, world):
        chip, comm = world
        f1 = comm.flag("a")
        fmany = [comm.flag(f"b{i}") for i in range(40)]
        wakes = {}

        def waiter_small(core):
            cc = comm.attach(core)
            yield from cc.wait_flags([f1], lambda v: v[0].seq >= 1)
            wakes["small"] = chip.now

        def waiter_large(core):
            cc = comm.attach(core)
            yield from cc.wait_flags(
                [fmany[0]], lambda v: v[0].seq >= 1, sweep_flags=40
            )
            wakes["large"] = chip.now

        def setter(core):
            cc = comm.attach(core)
            yield core.compute(10.0)
            yield from cc.flag_set(0, f1, FlagValue(0, 1))
            yield from cc.flag_set(1, fmany[0], FlagValue(0, 1))

        def program(core):
            if core.id == 0:
                yield from waiter_small(core)
            elif core.id == 1:
                yield from waiter_large(core)
            else:
                yield from setter(core)

        run_spmd(chip, program, core_ids=[0, 1, 2])
        # The 40-flag sweep adds ~0.5*40*t_poll of detection delay.
        assert wakes["large"] - wakes["small"] > 15 * chip.config.t_poll

    def test_flag_poll_reads_current_value(self, world):
        chip, comm = world
        f = comm.flag("t")
        f.poke(chip, 0, FlagValue(3, 4))

        def prog(core):
            cc = comm.attach(core)
            v = yield from cc.flag_poll(f)
            return v

        res = run_spmd(chip, prog, core_ids=[0])
        assert res.values[0] == FlagValue(3, 4)

    def test_empty_flag_list_returns_immediately(self, world):
        chip, comm = world

        def prog(core):
            cc = comm.attach(core)
            out = yield from cc.wait_flags([], lambda vs: True)
            return out

        res = run_spmd(chip, prog, core_ids=[0])
        assert res.values[0] == []
        assert res.makespan == 0.0
