"""Property tests for the transport delay/omission models and the
backend-agnostic crash coordinate (`repro.transport`)."""

import pytest

from repro.sim import FaultInjected
from repro.transport import (
    CrashOnEvent,
    LinkDrop,
    NoDelay,
    Partition,
    UniformDelay,
)


# -- UniformDelay ----------------------------------------------------------


def test_uniform_delay_within_bounds():
    model = UniformDelay(0.5, 4.0)
    model.reset(7)
    for src in range(4):
        for dst in range(4):
            for _ in range(50):
                d = model.delay(src, dst, op="flag", nbytes=32)
                assert 0.5 <= d <= 4.0


def test_uniform_delay_seed_reproducible():
    def draws(seed):
        model = UniformDelay(0.0, 10.0)
        model.reset(seed)
        return [model.delay(0, 1, op="data", nbytes=64) for _ in range(20)]

    assert draws(3) == draws(3)
    assert draws(3) != draws(4)


def test_uniform_delay_reset_replays():
    model = UniformDelay(0.0, 1.0)
    model.reset(11)
    first = [model.delay(2, 5, op="flag", nbytes=32) for _ in range(10)]
    model.reset(11)
    assert [model.delay(2, 5, op="flag", nbytes=32) for _ in range(10)] == first


def test_uniform_delay_rejects_bad_bounds():
    with pytest.raises(ValueError):
        UniformDelay(3.0, 1.0)
    with pytest.raises(ValueError):
        UniformDelay(-1.0, 1.0)


# -- LinkDrop --------------------------------------------------------------


def test_linkdrop_certain_drop_never_delivers():
    model = LinkDrop(1.0)
    model.reset(0)
    assert not any(
        model.deliver(src, dst, now=float(t))
        for src in range(3)
        for dst in range(3)
        for t in range(100)
    )


def test_linkdrop_zero_always_delivers():
    model = LinkDrop(0.0)
    model.reset(0)
    assert all(model.deliver(0, 1, now=0.0) for _ in range(100))


def test_linkdrop_seed_reproducible():
    def pattern(seed):
        model = LinkDrop(0.5)
        model.reset(seed)
        return [model.deliver(0, 1, now=0.0) for _ in range(64)]

    assert pattern(9) == pattern(9)
    assert True in pattern(9) and False in pattern(9)


def test_linkdrop_rejects_bad_probability():
    with pytest.raises(ValueError):
        LinkDrop(1.5)
    with pytest.raises(ValueError):
        LinkDrop(-0.1)


# -- Partition -------------------------------------------------------------


def test_partition_blocks_cross_group_until_heal():
    model = Partition([{0, 1}, {2, 3}], heal_at=100.0)
    model.reset(0)
    # Within a group: always delivered.
    assert model.deliver(0, 1, now=0.0)
    assert model.deliver(2, 3, now=50.0)
    # Across groups: dropped strictly before heal_at, delivered after --
    # deterministically, with no randomness involved.
    for now in (0.0, 50.0, 99.999):
        assert not model.deliver(0, 2, now=now)
        assert not model.deliver(3, 1, now=now)
    for now in (100.0, 100.001, 1e9):
        assert model.deliver(0, 2, now=now)
        assert model.deliver(3, 1, now=now)


def test_partition_unlisted_ranks_unrestricted():
    model = Partition([{0, 1}, {2}], heal_at=100.0)
    assert model.deliver(0, 7, now=0.0)
    assert model.deliver(7, 2, now=0.0)


def test_partition_rejects_overlapping_groups():
    with pytest.raises(ValueError):
        Partition([{0, 1}, {1, 2}], heal_at=10.0)


# -- per-link stream independence ------------------------------------------


def test_link_streams_are_independent():
    """Draws on one link must not perturb another link's sequence: the
    differential harness depends on this when backends interleave
    operations differently."""
    solo = UniformDelay(0.0, 1.0)
    solo.reset(5)
    expect_01 = [solo.delay(0, 1, op="flag", nbytes=32) for _ in range(10)]
    solo.reset(5)
    expect_23 = [solo.delay(2, 3, op="flag", nbytes=32) for _ in range(10)]

    mixed = UniformDelay(0.0, 1.0)
    mixed.reset(5)
    got_01, got_23 = [], []
    for i in range(10):
        # Interleave, with extra traffic on a third link in between.
        got_01.append(mixed.delay(0, 1, op="flag", nbytes=32))
        mixed.delay(4, 5, op="data", nbytes=96)
        got_23.append(mixed.delay(2, 3, op="flag", nbytes=32))
    assert got_01 == expect_01
    assert got_23 == expect_23


def test_direction_matters_for_streams():
    model = UniformDelay(0.0, 1.0)
    model.reset(1)
    a = [model.delay(0, 1, op="flag", nbytes=32) for _ in range(8)]
    model.reset(1)
    b = [model.delay(1, 0, op="flag", nbytes=32) for _ in range(8)]
    assert a != b


# -- NoDelay ----------------------------------------------------------------


def test_nodelay_is_free_and_reliable():
    model = NoDelay()
    model.reset(42)
    assert model.delay(0, 1, op="data", nbytes=4096) == 0.0
    assert model.deliver(0, 1, now=0.0)


# -- CrashOnEvent -----------------------------------------------------------


def test_crash_on_event_fires_at_nth_matching_event():
    hook = CrashOnEvent(2, "oc.chunk.begin", nth=2)
    hook.on_trace(2, "oc.chunk.begin", {})  # first occurrence: survives
    hook.on_trace(2, "other.kind", {})  # wrong kind: ignored
    hook.on_trace(1, "oc.chunk.begin", {})  # wrong rank: ignored
    with pytest.raises(FaultInjected) as exc:
        hook.on_trace(2, "oc.chunk.begin", {})
    assert exc.value.kind == "core_crash"
    assert exc.value.site == "rank2@oc.chunk.begin#2"
    # Fires exactly once.
    hook.on_trace(2, "oc.chunk.begin", {})


def test_crash_on_event_rejects_bad_nth():
    with pytest.raises(ValueError):
        CrashOnEvent(0, "oc.chunk.begin", nth=0)
