"""Tests for the core's timed primitives across contention modes."""

import pytest

from repro.scc import ContentionMode, SccChip, SccConfig


def run_on_core(chip, core_id, gen_factory):
    core = chip.cores[core_id]

    def prog():
        t0 = chip.sim.now
        yield from gen_factory(core)
        return chip.sim.now - t0

    p = chip.sim.process(prog())
    chip.sim.run()
    return p.value


class TestCosts:
    def test_mpb_line_cost_formula(self):
        chip = SccChip(SccConfig())
        core = chip.cores[0]
        cfg = chip.config
        for d in (1, 4, 9):
            assert core.mpb_line_cost(d) == pytest.approx(cfg.o_mpb + 2 * d * cfg.l_hop)

    def test_mem_line_costs_use_mc_distance(self):
        chip = SccChip(SccConfig())
        core = chip.cores[0]  # tile (0,0), MC distance 1
        cfg = chip.config
        assert core.mem_dist == 1
        assert core.mem_read_line_cost() == pytest.approx(cfg.o_mem_r + 2 * cfg.l_hop)
        assert core.mem_write_line_cost() == pytest.approx(cfg.o_mem_w + 2 * cfg.l_hop)


class TestMpbAccessTiming:
    @pytest.mark.parametrize(
        "mode", [ContentionMode.IDEAL, ContentionMode.BATCH, ContentionMode.EXACT]
    )
    def test_uncontended_duration_identical_across_modes(self, mode):
        chip = SccChip(SccConfig(contention_mode=mode))
        core = chip.cores[0]
        target = 10
        d = chip.mesh.core_distance(0, target)
        expected = 8 * core.mpb_line_cost(d)
        elapsed = run_on_core(chip, 0, lambda c: c.mpb_access(target, 8))
        assert elapsed == pytest.approx(expected)

    def test_zero_lines_is_free(self):
        chip = SccChip(SccConfig())
        elapsed = run_on_core(chip, 0, lambda c: c.mpb_access(5, 0))
        assert elapsed == 0.0

    def test_ideal_mode_ignores_port(self):
        chip = SccChip(SccConfig(contention_mode=ContentionMode.IDEAL))
        done = []

        def prog(core):
            yield from core.mpb_access(5, 100)
            done.append(core.id)

        for c in (0, 1, 2):
            core = chip.cores[c]
            chip.sim.process(prog(core))
        chip.sim.run()
        assert chip.mpbs[5].port.total_acquisitions == 0

    def test_batch_mode_serialises_port_holds(self):
        cfg = SccConfig(contention_mode=ContentionMode.BATCH)
        chip = SccChip(cfg)
        finish = {}

        def prog(core):
            yield from core.mpb_access(5, 100)
            finish[core.id] = chip.sim.now

        for c in (0, 1):
            chip.sim.process(prog(chip.cores[c]))
        chip.sim.run()
        # The second core waits for the first's 100-line port hold.
        assert abs(finish[0] - finish[1]) >= 100 * cfg.t_mpb_port * 0.99

    def test_exact_mode_interleaves_fairly(self):
        cfg = SccConfig(contention_mode=ContentionMode.EXACT)
        chip = SccChip(cfg)
        finish = {}

        def prog(core):
            yield from core.mpb_access(5, 100)
            finish[core.id] = chip.sim.now

        # Two same-distance cores interleave per line: near-equal finish.
        for c in (0, 1):
            chip.sim.process(prog(chip.cores[c]))
        chip.sim.run()
        assert abs(finish[0] - finish[1]) < 1.0

    def test_write_access_holds_port_longer(self):
        cfg = SccConfig(contention_mode=ContentionMode.BATCH)
        chip = SccChip(cfg)
        port = chip.mpbs[5].port

        def prog(core):
            yield from core.mpb_access(5, 10, write=True)

        chip.sim.process(prog(chip.cores[0]))
        chip.sim.run()
        assert port.busy_time == pytest.approx(10 * cfg.t_mpb_port_write)


class TestJitter:
    def test_no_jitter_is_deterministic(self):
        chip = SccChip(SccConfig(jitter=0.0))
        assert chip.cores[0].jittered(1.0) == 1.0

    def test_jitter_bounded(self):
        chip = SccChip(SccConfig(jitter=0.1))
        core = chip.cores[0]
        for _ in range(100):
            v = core.jittered(1.0)
            assert 0.9 <= v <= 1.1

    def test_jitter_reproducible_across_chips(self):
        a = SccChip(SccConfig(jitter=0.1, seed=7))
        b = SccChip(SccConfig(jitter=0.1, seed=7))
        va = [a.cores[3].jittered(1.0) for _ in range(10)]
        vb = [b.cores[3].jittered(1.0) for _ in range(10)]
        assert va == vb

    def test_jitter_differs_per_core(self):
        chip = SccChip(SccConfig(jitter=0.1))
        va = [chip.cores[0].jittered(1.0) for _ in range(5)]
        vb = [chip.cores[1].jittered(1.0) for _ in range(5)]
        assert va != vb


class TestLinkOccupancy:
    def test_links_walked_in_exact_mode(self):
        cfg = SccConfig(contention_mode=ContentionMode.EXACT, model_links=True)
        chip = SccChip(cfg)
        run_on_core(chip, 0, lambda c: c.mpb_access(46, 4))  # (0,0) -> (5,3)
        first_link = chip.mesh.link((0, 0), (1, 0))
        assert first_link.total_acquisitions == 4
