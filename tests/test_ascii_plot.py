"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.ascii_plot import MARKERS, ascii_chart


class TestAsciiChart:
    def test_basic_rendering(self):
        out = ascii_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=20, height=5)
        lines = out.splitlines()
        assert any("o" in line for line in lines)
        assert "o=a" in lines[-1]

    def test_title_and_labels(self):
        out = ascii_chart(
            [1, 2], {"s": [5.0, 6.0]}, title="My Chart", x_label="CL", y_label="us"
        )
        assert out.splitlines()[0] == "My Chart"
        assert "CL" in out and "us" in out

    def test_multiple_series_distinct_markers(self):
        out = ascii_chart(
            [1, 2], {"one": [1.0, 2.0], "two": [2.0, 1.0]}, width=10, height=4
        )
        assert "o=one" in out and "x=two" in out
        body = "\n".join(out.splitlines()[1:-1])
        assert "o" in body and "x" in body

    def test_extremes_map_to_edges(self):
        out = ascii_chart([1, 10], {"s": [0.0, 100.0]}, width=11, height=5)
        rows = [l[1:] for l in out.splitlines() if l.startswith("|")]
        # max lands on the top row's last column, min on the bottom row.
        assert rows[0].rstrip().endswith("o")
        assert rows[-1].startswith("o")

    def test_log_axes(self):
        out = ascii_chart(
            [1, 10, 100], {"s": [1.0, 10.0, 100.0]},
            width=21, height=7, logx=True, logy=True,
        )
        rows = [l[1:] for l in out.splitlines() if l.startswith("|")]
        # On log-log a power law is a straight diagonal: the middle point
        # sits in the middle row and column.
        mid_row = rows[len(rows) // 2]
        assert mid_row[len(mid_row) // 2 - 1 : len(mid_row) // 2 + 2].count("o") >= 0
        assert "(log)" in out

    def test_flat_series_does_not_divide_by_zero(self):
        out = ascii_chart([1, 2, 3], {"s": [5.0, 5.0, 5.0]})
        assert "o" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([], {"s": []})
        with pytest.raises(ValueError):
            ascii_chart([1], {})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"s": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"s": [1.0, 2.0]}, logx=True)
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"s": [0.0, 2.0]}, logy=True)
        too_many = {f"s{i}": [1.0, 2.0] for i in range(len(MARKERS) + 1)}
        with pytest.raises(ValueError):
            ascii_chart([1, 2], too_many)
