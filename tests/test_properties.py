"""Property-based tests over the full stack (hypothesis).

These run small configurations (few ranks, IDEAL contention, small
payloads) so each example is fast while still exercising the complete
protocol paths.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives import binomial_bcast, scatter_allgather_bcast
from repro.core import OcBcast, OcBcastConfig
from repro.rcce import Comm
from repro.scc import ContentionMode, SccChip, SccConfig, run_spmd

FAST = SccConfig(contention_mode=ContentionMode.IDEAL)

common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_bcast(algo_builder, P, root, payload):
    chip = SccChip(FAST)
    comm = Comm(chip, ranks=list(range(P)))
    bcast = algo_builder(comm)
    nbytes = len(payload)
    results = {}

    def program(core):
        cc = comm.attach(core)
        buf = cc.alloc(nbytes)
        if cc.rank == root:
            buf.write(payload)
        yield from bcast(cc, root, buf, nbytes)
        results[cc.rank] = buf.read()

    run_spmd(chip, program, core_ids=list(range(P)))
    return results


@common_settings
@given(
    P=st.integers(2, 10),
    root=st.integers(0, 9),
    k=st.integers(1, 9),
    payload=st.binary(min_size=1, max_size=700),
)
def test_ocbcast_delivers_any_payload(P, root, k, payload):
    root %= P
    results = run_bcast(
        lambda comm: OcBcast(comm, OcBcastConfig(k=k, chunk_lines=4)).bcast,
        P,
        root,
        payload,
    )
    assert all(results[r] == payload for r in range(P))


@common_settings
@given(
    P=st.integers(2, 10),
    root=st.integers(0, 9),
    payload=st.binary(min_size=1, max_size=600),
)
def test_binomial_delivers_any_payload(P, root, payload):
    root %= P
    results = run_bcast(lambda comm: binomial_bcast, P, root, payload)
    assert all(results[r] == payload for r in range(P))


@common_settings
@given(
    P=st.integers(2, 10),
    root=st.integers(0, 9),
    payload=st.binary(min_size=1, max_size=600),
)
def test_scatter_allgather_delivers_any_payload(P, root, payload):
    root %= P
    results = run_bcast(lambda comm: scatter_allgather_bcast, P, root, payload)
    assert all(results[r] == payload for r in range(P))


@common_settings
@given(
    P=st.integers(2, 8),
    payload=st.binary(min_size=1, max_size=300),
    nbuf=st.integers(1, 3),
    chunk=st.integers(1, 6),
)
def test_ocbcast_buffering_never_changes_results(P, payload, nbuf, chunk):
    results = run_bcast(
        lambda comm: OcBcast(
            comm, OcBcastConfig(k=2, chunk_lines=chunk, num_buffers=nbuf)
        ).bcast,
        P,
        0,
        payload,
    )
    assert all(results[r] == payload for r in range(P))


@common_settings
@given(
    P=st.integers(2, 8),
    payloads=st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=4),
)
def test_ocbcast_back_to_back_broadcasts(P, payloads):
    chip = SccChip(FAST)
    comm = Comm(chip, ranks=list(range(P)))
    oc = OcBcast(comm, OcBcastConfig(k=3, chunk_lines=3))
    results = {i: {} for i in range(len(payloads))}

    def program(core):
        cc = comm.attach(core)
        for i, payload in enumerate(payloads):
            root = i % P
            buf = cc.alloc(len(payload))
            if cc.rank == root:
                buf.write(payload)
            yield from oc.bcast(cc, root, buf, len(payload))
            results[i][cc.rank] = buf.read()

    run_spmd(chip, program, core_ids=list(range(P)))
    for i, payload in enumerate(payloads):
        assert all(results[i][r] == payload for r in range(P))


@common_settings
@given(
    P=st.integers(1, 10),
    nbytes=st.integers(0, 400),
    seed=st.integers(0, 10_000),
)
def test_latency_is_deterministic(P, nbytes, seed):
    """Two identical runs produce bit-identical clocks."""
    if nbytes == 0 or P == 1:
        return

    def one_run():
        chip = SccChip(FAST)
        comm = Comm(chip, ranks=list(range(P)))
        oc = OcBcast(comm, OcBcastConfig(k=2, chunk_lines=4))
        payload = bytes((seed + i) % 256 for i in range(nbytes))

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            if cc.rank == 0:
                buf.write(payload)
            yield from oc.bcast(cc, 0, buf, nbytes)

        return run_spmd(chip, program, core_ids=list(range(P))).makespan

    assert one_run() == one_run()
