"""Integration tests spanning several subsystems at once."""

import numpy as np
import pytest

from repro import (
    Comm,
    ContentionMode,
    OcBcast,
    OcBcastConfig,
    OsagBcast,
    ReduceOp,
    SccChip,
    SccConfig,
    binomial_bcast,
    run_spmd,
    scatter_allgather_bcast,
)
from repro.mpi import Mpi
from repro.sim import DeadlockError


class TestSubsetCommunicators:
    """Collectives over non-contiguous core subsets (ranks != core ids)."""

    CORES = [5, 11, 0, 30, 47, 22, 13, 8]  # arbitrary order, arbitrary tiles

    def test_ocbcast_on_scattered_cores(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=self.CORES)
        oc = OcBcast(comm, OcBcastConfig(k=3))
        payload = bytes(range(200))
        results = {}

        def program(core):
            cc = comm.attach(core)
            assert comm.core_of(cc.rank) == core.id
            buf = cc.alloc(len(payload))
            if cc.rank == 0:  # rank 0 is core 5
                buf.write(payload)
            yield from oc.bcast(cc, 0, buf, len(payload))
            results[core.id] = buf.read()

        run_spmd(chip, program, core_ids=self.CORES)
        assert set(results) == set(self.CORES)
        assert all(v == payload for v in results.values())

    def test_two_communicators_on_one_chip(self):
        """Two disjoint halves broadcast independently, concurrently."""
        chip = SccChip(SccConfig())
        left = Comm(chip, ranks=list(range(0, 24)))
        right = Comm(chip, ranks=list(range(24, 48)))
        oc_left = OcBcast(left, OcBcastConfig(k=3))
        oc_right = OcBcast(right, OcBcastConfig(k=5))
        results = {}

        def program(core):
            comm, oc = (left, oc_left) if core.id < 24 else (right, oc_right)
            cc = comm.attach(core)
            payload = bytes([core.id // 24 + 1]) * 100
            buf = cc.alloc(100)
            if cc.rank == 0:
                buf.write(payload)
            yield from oc.bcast(cc, 0, buf, 100)
            results[core.id] = buf.read()

        run_spmd(chip, program)
        assert all(results[c] == b"\x01" * 100 for c in range(24))
        assert all(results[c] == b"\x02" * 100 for c in range(24, 48))

    def test_rank_mapping_validation(self):
        chip = SccChip(SccConfig())
        with pytest.raises(ValueError):
            Comm(chip, ranks=[0, 0, 1])
        with pytest.raises(ValueError):
            Comm(chip, ranks=[0, 99])
        comm = Comm(chip, ranks=[3, 4])
        with pytest.raises(ValueError):
            comm.rank_of(5)
        with pytest.raises(ValueError):
            comm.core_of(2)


class TestAlgorithmAgreement:
    """All four broadcasts must deliver identical bytes for identical
    inputs, whatever the timing differences."""

    def test_all_four_broadcasts_agree(self):
        nbytes = 3333
        payload = bytes((i * 91 + 17) % 256 for i in range(nbytes))
        outcomes = {}

        def run(name, factory):
            chip = SccChip(SccConfig())
            comm = Comm(chip, ranks=list(range(16)))
            bcast = factory(comm)
            results = {}

            def program(core):
                cc = comm.attach(core)
                buf = cc.alloc(nbytes)
                if cc.rank == 2:
                    buf.write(payload)
                yield from bcast(cc, 2, buf, nbytes)
                results[cc.rank] = buf.read()

            run_spmd(chip, program, core_ids=list(range(16)))
            outcomes[name] = results

        run("oc", lambda c: OcBcast(c).bcast)
        run("osag", lambda c: OsagBcast(c).bcast)
        run("binomial", lambda c: binomial_bcast)
        run("sag", lambda c: scatter_allgather_bcast)

        for name, results in outcomes.items():
            assert all(v == payload for v in results.values()), name

    def test_exact_mode_agrees_with_batch_mode(self):
        nbytes = 97 * 32
        payload = bytes((7 * i) % 256 for i in range(nbytes))
        latencies = {}

        for mode in (ContentionMode.BATCH, ContentionMode.EXACT):
            chip = SccChip(SccConfig(contention_mode=mode))
            comm = Comm(chip, ranks=list(range(12)))
            oc = OcBcast(comm)
            results = {}

            def program(core):
                cc = comm.attach(core)
                buf = cc.alloc(nbytes)
                if cc.rank == 0:
                    buf.write(payload)
                yield from oc.bcast(cc, 0, buf, nbytes)
                results[cc.rank] = buf.read()

            res = run_spmd(chip, program, core_ids=list(range(12)))
            assert all(v == payload for v in results.values())
            latencies[mode] = res.makespan

        # Same data, similar timing (EXACT adds mild queueing effects).
        ratio = latencies[ContentionMode.EXACT] / latencies[ContentionMode.BATCH]
        assert 0.8 < ratio < 1.4


class TestMixedApplications:
    def test_mpi_app_with_interleaved_collectives(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=list(range(16)))
        mpi = Mpi(comm, backend="rma")
        op = ReduceOp.sum()
        checks = []

        def program(core):
            rank = mpi.attach(core)
            data = rank.alloc(64)
            scratch = rank.alloc(64)
            for it in range(3):
                if rank.rank == it:  # rotating root
                    data.write(np.full(8, it + 1, dtype="<i8").tobytes())
                yield from rank.bcast(data, 64, root=it)
                vals = np.frombuffer(data.read(), "<i8") + rank.rank
                data.write(vals.tobytes())
                yield from rank.allreduce(data, scratch, 64, op)
                total = int(np.frombuffer(scratch.read(), "<i8")[0])
                expected = 16 * (it + 1) + sum(range(16))
                checks.append(total == expected)
                # Restore a clean value for the next round's bcast source.
                if rank.rank == it + 1:
                    data.write(np.full(8, it + 2, dtype="<i8").tobytes())
                yield from rank.barrier()

        run_spmd(chip, program, core_ids=list(range(16)))
        assert checks and all(checks)

    def test_broadcast_storms_from_every_root(self):
        """48 consecutive broadcasts, one per root, on one engine."""
        chip = SccChip(SccConfig())
        comm = Comm(chip)
        oc = OcBcast(comm)
        failures = []

        def program(core):
            cc = comm.attach(core)
            for root in range(0, 48, 7):
                buf = cc.alloc(64)
                if cc.rank == root:
                    buf.write(bytes([root]) * 64)
                yield from oc.bcast(cc, root, buf, 64)
                if buf.read() != bytes([root]) * 64:
                    failures.append((cc.rank, root))

        run_spmd(chip, program)
        assert not failures


class TestFailureInjection:
    def test_missing_participant_is_detected_as_deadlock(self):
        """If one core never calls the collective, the run must end in a
        diagnosable deadlock, not a hang or silent corruption."""
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=list(range(8)))
        oc = OcBcast(comm, OcBcastConfig(k=3))

        def program(core):
            cc = comm.attach(core)
            if cc.rank == 5:
                return  # rank 5 "crashes" before the collective
            buf = cc.alloc(128)
            if cc.rank == 0:
                buf.write(b"x" * 128)
            yield from oc.bcast(cc, 0, buf, 128)

        with pytest.raises(DeadlockError, match="spmd-core"):
            run_spmd(chip, program, core_ids=list(range(8)))

    def test_mismatched_sizes_detected(self):
        """Ranks disagreeing on nbytes corrupts chunk counts: the run
        must fail loudly (deadlock), never silently."""
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=list(range(4)))
        oc = OcBcast(comm, OcBcastConfig(k=2, chunk_lines=2))

        def program(core):
            cc = comm.attach(core)
            n = 256 if cc.rank != 3 else 64  # rank 3 expects fewer chunks
            buf = cc.alloc(256)
            if cc.rank == 0:
                buf.write(b"y" * 256)
            yield from oc.bcast(cc, 0, buf, n)

        with pytest.raises(Exception):
            run_spmd(chip, program, core_ids=list(range(4)))


class TestScaledChips:
    @pytest.mark.parametrize("cols,rows", [(2, 2), (8, 8), (12, 4)])
    def test_broadcast_on_other_mesh_sizes(self, cols, rows):
        chip = SccChip(SccConfig(mesh_cols=cols, mesh_rows=rows))
        comm = Comm(chip)
        oc = OcBcast(comm)
        payload = bytes((i * 3) % 256 for i in range(500))
        results = {}

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(500)
            if cc.rank == 0:
                buf.write(payload)
            yield from oc.bcast(cc, 0, buf, 500)
            results[cc.rank] = buf.read()

        run_spmd(chip, program)
        assert len(results) == cols * rows * 2
        assert all(v == payload for v in results.values())

    def test_single_tile_chip(self):
        chip = SccChip(SccConfig(mesh_cols=1, mesh_rows=1))
        comm = Comm(chip)
        oc = OcBcast(comm, OcBcastConfig(k=1))
        results = {}

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(64)
            if cc.rank == 0:
                buf.write(b"t" * 64)
            yield from oc.bcast(cc, 0, buf, 64)
            results[cc.rank] = buf.read()

        run_spmd(chip, program)
        assert results == {0: b"t" * 64, 1: b"t" * 64}
