"""Tests for chip assembly and SPMD execution."""

import pytest

from repro.scc import SccChip, SccConfig, run_spmd
from repro.sim import Tracer


def test_chip_assembly_defaults():
    chip = SccChip()
    assert chip.num_cores == 48
    assert len(chip.mpbs) == 48
    assert len(chip.cores) == 48
    assert chip.now == 0.0


def test_spmd_runs_all_cores():
    chip = SccChip()

    def program(core):
        yield core.compute(float(core.id + 1))
        return core.id * 2

    res = run_spmd(chip, program)
    assert res.core_ids == tuple(range(48))
    assert res.values == tuple(i * 2 for i in range(48))
    assert res.finish_times == tuple(float(i + 1) for i in range(48))
    assert res.end_time == 48.0
    assert res.makespan == 48.0


def test_spmd_subset_of_cores():
    chip = SccChip()

    def program(core):
        yield core.compute(1.0)
        return core.id

    res = run_spmd(chip, program, core_ids=[3, 7, 11])
    assert res.values == (3, 7, 11)
    assert res.value_of(7) == 7
    assert res.finish_of(11) == 1.0


def test_spmd_duplicate_cores_rejected():
    chip = SccChip()

    def program(core):
        yield core.compute(1.0)

    with pytest.raises(ValueError):
        run_spmd(chip, program, core_ids=[1, 1])


def test_clock_persists_across_spmd_runs():
    chip = SccChip()

    def program(core):
        yield core.compute(5.0)

    r1 = run_spmd(chip, program, core_ids=[0])
    r2 = run_spmd(chip, program, core_ids=[0])
    assert r1.start_time == 0.0
    assert r2.start_time == 5.0
    assert r2.end_time == 10.0


def test_tracer_collects_when_enabled():
    chip = SccChip(tracer=Tracer(enabled=True))
    chip.trace("test", "hello", x=1)
    assert len(chip.tracer) == 1
    rec = chip.tracer.records[0]
    assert rec.source == "test"
    assert rec.kind == "hello"
    assert rec.detail == {"x": 1}


def test_tracer_disabled_by_default():
    chip = SccChip()
    chip.trace("test", "hello")
    assert len(chip.tracer) == 0


def test_custom_mesh_size():
    chip = SccChip(SccConfig(mesh_cols=2, mesh_rows=2))
    assert chip.num_cores == 8

    def program(core):
        yield core.compute(1.0)
        return core.tile

    res = run_spmd(chip, program)
    assert res.values == (
        (0, 0), (0, 0), (1, 0), (1, 0), (0, 1), (0, 1), (1, 1), (1, 1)
    )
