"""Tests for membership, epochs, and the crash-surviving broadcast service.

The adversarial configuration is a three-chunk message on the full
48-core chip: multi-chunk streams are what make *mid-stream* interior
crashes interesting (the crashed node has already relayed some chunks,
so its subtree is mid-pipeline when it goes silent).
"""

import pytest

from repro.core import MemberTree, OcBcast, OcBcastConfig, PropagationTree
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.member import (
    CompletionDirective,
    ElectionConfig,
    ElectionService,
    MembershipConfig,
    MembershipService,
    MembershipView,
    OcBcastService,
)
from repro.member.heartbeat import (
    DIRECTIVE_ABORT,
    DIRECTIVE_NONE,
    DIRECTIVE_REBROADCAST,
)
from repro.obs import InvariantChecker, MetricsRegistry
from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd
from repro.scc.config import CACHE_LINE
from repro.sim import FaultInjected, SimError, Tracer
from repro.sim.errors import TimeoutError as SimTimeoutError

THREE_CHUNKS = 3 * 96 * CACHE_LINE

#: An interior (non-root, has children) node of the default 48/7 tree.
TREE48 = PropagationTree(48, 7, 0)
INTERIOR = next(r for r in range(1, 48) if TREE48.children_of(r))


class TestMemberTree:
    def test_full_tree_matches_propagation_tree(self):
        mt = MemberTree.survivors(48, 7, root=5)
        pt = PropagationTree(48, 7, root=5)
        for r in range(48):
            assert mt.position_of(r) == pt.position_of(r)
            assert mt.parent_of(r) == pt.parent_of(r)
            assert mt.children_of(r) == pt.children_of(r)
            if r != 5:
                assert mt.child_index(r) == pt.child_index(r)
        assert mt.levels() == pt.levels()
        assert mt.depth() == pt.depth()

    def test_survivors_filter_preserves_relative_order(self):
        dead = {3, 17, 40}
        mt = MemberTree.survivors(48, 7, root=0, dead=dead)
        assert mt.size == 45
        assert all(d not in mt for d in dead)
        # Remaining ranks keep the id-based rotation order.
        expected = tuple(r for r in range(48) if r not in dead)
        assert mt.members == expected

    def test_parent_child_round_trip(self):
        mt = MemberTree.survivors(48, 7, root=2, dead={5, 9, 30, 31})
        for r in mt.members:
            for c in mt.children_of(r):
                assert mt.parent_of(c) == r
                assert mt.children_of(r)[mt.child_index(c)] == c
        root_children = mt.children_of(2)
        assert len(root_children) <= 7

    def test_dead_interior_nodes_subtree_is_reattached(self):
        # Killing an interior node must leave no orphans: every survivor
        # still has a path to the root.
        mt = MemberTree.survivors(48, 7, root=0, dead={INTERIOR})
        for r in mt.members:
            hops, cur = 0, r
            while cur != 0:
                cur = mt.parent_of(cur)
                hops += 1
                assert hops <= mt.size
        assert INTERIOR not in mt

    def test_explicit_order_is_respected(self):
        order = (1, 0, 3, 2)
        mt = MemberTree.survivors(4, 2, root=1, dead={3}, order=order)
        assert mt.members == (1, 0, 2)

    def test_dead_root_reroots_at_first_surviving_rank(self):
        # The root may die: the tree re-roots at the first survivor of
        # the id-rotation order, for every fan-out.
        for k in range(1, 5):
            mt = MemberTree.survivors(8, k, root=0, dead={0})
            assert mt.root == 1
            assert mt.members == (1, 2, 3, 4, 5, 6, 7)
            assert mt.parent_of(1) is None
            assert mt.children_of(1) == list(range(2, 2 + k))

    def test_dead_root_rotation_order_wraps(self):
        # root=5's rotation order is 5,6,7,0,..,4; killing 5 and 6 makes
        # 7 the new root and keeps the survivors' relative placement.
        mt = MemberTree.survivors(8, 2, root=5, dead={5, 6})
        assert mt.root == 7
        assert mt.members == (7, 0, 1, 2, 3, 4)

    def test_dead_root_and_interior_leave_no_orphans(self):
        dead = {0, INTERIOR}
        mt = MemberTree.survivors(48, 7, root=0, dead=dead)
        assert mt.root == min(set(range(48)) - dead) and mt.size == 46
        for r in mt.members:
            hops, cur = 0, r
            while cur != mt.root:
                cur = mt.parent_of(cur)
                hops += 1
                assert hops <= mt.size
            for c in mt.children_of(r):
                assert mt.parent_of(c) == r

    def test_single_survivor_is_a_leaf_root(self):
        mt = MemberTree.survivors(4, 2, root=0, dead={0, 1, 3})
        assert mt.members == (2,)
        assert mt.root == 2 and mt.is_leaf(2) and mt.depth() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemberTree((), 2)
        with pytest.raises(ValueError):
            MemberTree((1, 1, 2), 2)
        with pytest.raises(ValueError):
            MemberTree((0, 1), 0)
        with pytest.raises(ValueError):
            MemberTree.survivors(2, 2, root=0, dead={0, 1})  # nobody left
        with pytest.raises(ValueError):
            MemberTree.survivors(4, 2, root=1, order=(0, 1, 2, 3))
        with pytest.raises(ValueError):
            MemberTree.survivors(4, 2, root=0, order=(0, 1, 1, 3))
        with pytest.raises(ValueError):
            MemberTree((0, 1, 2), 2).child_index(0)


class TestMembershipView:
    def test_full_and_without(self):
        v = MembershipView.full(48)
        assert v.epoch == 0 and len(v.members) == 48 and 17 in v
        w = v.without({3, 7})
        assert w.epoch == 1
        assert 3 not in w and 7 not in w and len(w.members) == 46

    def test_bitmap_round_trip(self):
        v = MembershipView.full(48).without({0, 13, 47})
        raw = v.bitmap(48)
        assert len(raw) == 6
        back = MembershipView.from_bitmap(v.epoch, raw, 48)
        assert back == v

    def test_validation(self):
        with pytest.raises(ValueError):
            MembershipView(0, ())
        with pytest.raises(ValueError):
            MembershipView(-1, (0,))
        with pytest.raises(ValueError):
            MembershipView(0, (1, 1))
        with pytest.raises(ValueError):
            MembershipView(0, (99,)).bitmap(48)


class TestMembershipConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MembershipConfig(hb_timeout=0)
        with pytest.raises(ValueError):
            MembershipConfig(hb_timeout=100, view_timeout=100)
        with pytest.raises(ValueError):
            MembershipConfig(hb_max_retries=-1)
        with pytest.raises(ValueError):
            MembershipConfig(max_attempts=0)

    def test_service_requires_ft(self):
        with pytest.raises(ValueError):
            OcBcastConfig(service=True, ft=False)


def run_service(plan, nbytes=THREE_CHUNKS, watchdog=100_000.0, bcasts=1):
    """``bcasts`` back-to-back service broadcasts on a fresh 48-core chip
    under ``plan``.  Per-core result: a list of ``(status, payload_ok)``
    per broadcast, or ``"crashed"``."""
    injector = FaultInjector(plan)
    chip = SccChip(SccConfig(), faults=injector, metrics=MetricsRegistry())
    comm = Comm(chip)
    svc = OcBcastService(comm)
    payloads = [
        bytes((i + 31 * n) % 251 for i in range(nbytes)) for n in range(bcasts)
    ]

    def prog(core):
        cc = comm.attach(core)
        buf = cc.alloc(nbytes)
        out = []
        try:
            for payload in payloads:
                # Stage at the effective source: the static root while it
                # lives, else the current coordinator (post-failover).
                view = svc.member.views[cc.rank]
                src = svc.root if svc.root in view else svc.member.coord[cc.rank]
                if cc.rank == src:
                    buf.write(payload)
                status = yield from svc.bcast(cc, buf, nbytes)
                if status == "evicted":
                    out.append(("evicted", None))
                else:
                    out.append((status, buf.read() == payload))
        except FaultInjected:
            return "crashed"
        return out

    chip.sim.start_watchdog(watchdog)
    res = run_spmd(chip, prog)
    return res, injector, chip, svc


class TestServiceFaultFree:
    def test_every_core_commits_and_delivers(self):
        res, injector, chip, svc = run_service(FaultPlan())
        assert all(v == [("ok", True)] for v in res.values)
        assert injector.n_injected == 0
        flat = chip.metrics.flat()
        assert flat["oc.svc.commit_ok"] == 1.0
        assert "svc.retries" not in chip.metrics.counters
        # No heartbeat round on the success path.
        assert "member.suspected" not in chip.metrics.counters

    def test_single_rank_service_is_trivially_ok(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip, ranks=[0])
        svc = OcBcastService(comm)

        def prog(core):
            cc = comm.attach(core)
            buf = cc.alloc(64)
            buf.write(bytes(64))
            return (yield from svc.bcast(cc, buf, 64))

        assert run_spmd(chip, prog, core_ids=[0]).values == ("ok",)


class TestServiceRecovery:
    def test_interior_crash_mid_stream_degrades_to_smaller_tree(self):
        plan = FaultPlan(
            (FaultSpec(FaultKind.CORE_CRASH, core=INTERIOR, nth=40),)
        )
        res, injector, chip, svc = run_service(plan)
        vals = list(res.values)
        assert vals[INTERIOR] == "crashed"
        live = [v for i, v in enumerate(vals) if i != INTERIOR]
        assert all(v == [("ok", True)] for v in live)
        # One recovery round: epoch advanced, the dead core evicted.
        view = svc.member.views[0]
        assert view.epoch == 1 and INTERIOR not in view
        assert svc.survivor_tree(view).size == 47
        flat = chip.metrics.flat()
        assert flat["member.suspected"] == 1.0
        assert flat["svc.retries"] >= 1.0
        assert flat["member.ttd_us.count"] == 1.0
        assert flat["member.ttr_us.count"] == 1.0
        assert flat["member.ttr_us.mean"] >= flat["member.ttd_us.mean"]

    def test_corrupted_data_line_is_repaired_end_to_end(self):
        plan = FaultPlan((FaultSpec(FaultKind.CORRUPT_DATA_WRITE, nth=30),))
        res, injector, chip, svc = run_service(plan)
        assert all(v == [("ok", True)] for v in res.values)
        assert chip.metrics.flat()["oc.integrity.mismatches"] >= 1.0

    def test_multi_fault_crash_plus_corruption_in_one_trial(self):
        plan = FaultPlan((
            FaultSpec(FaultKind.CORE_CRASH, core=INTERIOR, nth=60),
            FaultSpec(FaultKind.CORRUPT_DATA_WRITE, nth=45),
        ))
        res, injector, chip, svc = run_service(plan)
        vals = list(res.values)
        assert vals[INTERIOR] == "crashed"
        assert all(
            v == [("ok", True)] for i, v in enumerate(vals) if i != INTERIOR
        )
        assert injector.n_injected == 2

    def test_link_down_burst_evicts_the_partitioned_member(self):
        plan = FaultPlan((
            FaultSpec(
                FaultKind.LINK_DOWN, core=INTERIOR, nth=20, duration=400.0
            ),
        ))
        res, injector, chip, svc = run_service(plan)
        vals = list(res.values)
        statuses = [v if isinstance(v, str) else v[0][0] for v in vals]
        assert statuses.count("ok") >= 47
        assert all(s in ("ok", "evicted") for s in statuses)
        assert injector.burst_dropped > 0

    def test_later_broadcasts_never_touch_the_dead_core(self):
        plan = FaultPlan(
            (FaultSpec(FaultKind.CORE_CRASH, core=INTERIOR, nth=40),)
        )
        res, injector, chip, svc = run_service(plan, bcasts=2)
        vals = list(res.values)
        assert vals[INTERIOR] == "crashed"
        live = [v for i, v in enumerate(vals) if i != INTERIOR]
        assert all(v == [("ok", True), ("ok", True)] for v in live)
        # The second broadcast committed without a single retry: the
        # survivor tree simply does not contain the dead core.
        assert chip.metrics.flat()["oc.svc.commit_ok"] >= 2.0
        epoch = svc.member.views[0].epoch
        assert epoch == 1  # no further suspicion after the repair

    def test_evicted_rank_returns_evicted_without_participating(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip)
        svc = OcBcastService(comm)
        victim = 7
        for r in range(48):
            svc.member.views[r] = svc.member.views[r].without({victim})
        nbytes = 96 * CACHE_LINE
        payload = bytes(i % 251 for i in range(nbytes))

        def prog(core):
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            if cc.rank == 0:
                buf.write(payload)
            status = yield from svc.bcast(cc, buf, nbytes)
            return (status, buf.read() == payload)

        chip.sim.start_watchdog(50_000.0)
        res = run_spmd(chip, prog)
        vals = list(res.values)
        assert vals[victim] == ("evicted", False)
        assert all(
            v == ("ok", True) for i, v in enumerate(vals) if i != victim
        )


class TestIntegrityEngine:
    """Payload integrity on the bare OC-Bcast engine (no service)."""

    def _bcast(self, plan, nbytes=96 * CACHE_LINE):
        injector = FaultInjector(plan)
        chip = SccChip(SccConfig(), faults=injector, metrics=MetricsRegistry())
        comm = Comm(chip)
        oc = OcBcast(comm, OcBcastConfig(ft=True, integrity=True))
        payload = bytes(i % 251 for i in range(nbytes))

        def prog(core):
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            if cc.rank == 0:
                buf.write(payload)
            yield from oc.bcast(cc, 0, buf, nbytes)
            return buf.read() == payload

        chip.sim.start_watchdog(50_000.0)
        res = run_spmd(chip, prog)
        return res, chip

    def test_corrupted_fetch_deposit_is_refetched(self):
        # data write 1 = root payload stage, 2 = root header; 3+ are the
        # children's fetch deposits -- corrupting one is repairable by a
        # re-fetch from the (clean) parent copy.
        plan = FaultPlan((FaultSpec(FaultKind.CORRUPT_DATA_WRITE, nth=3),))
        res, chip = self._bcast(plan)
        assert all(v is True for v in res.values)
        flat = chip.metrics.flat()
        assert flat["oc.integrity.mismatches"] >= 1.0
        assert chip.faults.n_recovered >= 1

    def test_corrupted_staging_escalates_instead_of_delivering(self):
        # Corrupting the root's *staged copy* (data write 1) is not
        # repairable by re-fetching -- without the service layer it must
        # escalate as a timeout, never deliver silently.
        plan = FaultPlan((FaultSpec(FaultKind.CORRUPT_DATA_WRITE, nth=1),))
        with pytest.raises(SimError) as ei:
            self._bcast(plan)
        cause = ei.value.__cause__
        assert isinstance(cause, SimTimeoutError)
        assert cause.site == "oc.integrity"

    def test_baseline_without_integrity_delivers_corrupt_bytes(self):
        plan = FaultPlan((FaultSpec(FaultKind.CORRUPT_DATA_WRITE, nth=1),))
        injector = FaultInjector(plan)
        chip = SccChip(SccConfig(), faults=injector)
        comm = Comm(chip)
        oc = OcBcast(comm, OcBcastConfig())  # the paper's protocol
        nbytes = 96 * CACHE_LINE
        payload = bytes(i % 251 for i in range(nbytes))

        def prog(core):
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            if cc.rank == 0:
                buf.write(payload)
            yield from oc.bcast(cc, 0, buf, nbytes)
            return buf.read() == payload

        res = run_spmd(chip, prog)
        assert any(v is False for v in res.values)  # silent corruption

    def test_buffer_lines_accounts_for_header(self):
        assert OcBcastConfig(integrity=True).buffer_lines == 97
        assert OcBcastConfig().buffer_lines == 96

    def test_chunk_ok_rejects_wrong_seq_span_and_crc(self):
        import struct
        import zlib

        payload = b"\xab" * 64
        hdr = struct.Struct("<qII").pack(5, zlib.crc32(payload), 64)
        raw = hdr.ljust(CACHE_LINE, b"\0") + payload
        assert OcBcast._chunk_ok(raw, 5, 64)
        assert not OcBcast._chunk_ok(raw, 6, 64)
        assert not OcBcast._chunk_ok(raw, 5, 32)
        assert not OcBcast._chunk_ok(
            raw[:CACHE_LINE] + b"\x00" * 64, 5, 64
        )


class TestMembershipPrimitives:
    def test_report_collect_install_adopt_round_trip(self):
        chip = SccChip(SccConfig())
        comm = Comm(chip)
        member = MembershipService(comm, root=0)
        silent = 9

        def prog(core):
            cc = comm.attach(core)
            if cc.rank == 0:
                statuses, suspects = yield from member.collect(cc, 1)
                assert suspects == [silent]
                assert statuses[1] is True and statuses[2] is False
                view = member.views[0].without(suspects)
                unreachable = yield from member.install(cc, view, 1)
                assert unreachable == []
                return member.views[0]
            if cc.rank == silent:
                return None  # plays dead: no heartbeat
            yield from member.report(cc, 1, ok=cc.rank == 1)
            return (yield from member.await_view(cc, 1))

        chip.sim.start_watchdog(100_000.0)
        res = run_spmd(chip, prog)
        vals = list(res.values)
        for r, v in enumerate(vals):
            if r == silent:
                assert v is None
            else:
                assert v.epoch == 1 and silent not in v

    def test_membership_root_validation(self):
        chip = SccChip(SccConfig())
        with pytest.raises(ValueError):
            MembershipService(Comm(chip), root=48)


class TestCompletionDirective:
    def test_encode_decode_round_trip(self):
        for d in (
            CompletionDirective(DIRECTIVE_NONE, 0, 0),
            CompletionDirective(DIRECTIVE_REBROADCAST, 17, 3),
            CompletionDirective(DIRECTIVE_ABORT, 0, 65535),
        ):
            raw = d.encode()
            assert len(raw) == 4
            assert CompletionDirective.decode(raw) == d

    def test_validation(self):
        with pytest.raises(ValueError):
            CompletionDirective(7, 0, 0)
        with pytest.raises(ValueError):
            CompletionDirective(DIRECTIVE_ABORT, -1, 0)
        with pytest.raises(ValueError):
            CompletionDirective(DIRECTIVE_ABORT, 0, -1)


class TestElection:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ElectionConfig(claim_step=0.0)
        with pytest.raises(ValueError):
            ElectionConfig(settle=0.0)
        with pytest.raises(ValueError):
            ElectionConfig(jitter_max=-1.0)
        with pytest.raises(ValueError):
            ElectionConfig(claim_step=100.0, jitter_max=100.0)
        with pytest.raises(ValueError):
            ElectionConfig(max_retries=-1)

    def _elect(self, suspects):
        """All non-suspect ranks run one election round; suspects stay
        silent (playing dead)."""
        chip = SccChip(SccConfig(), metrics=MetricsRegistry())
        comm = Comm(chip)
        member = MembershipService(comm, root=0)
        election = ElectionService(comm, member)

        def prog(core):
            cc = comm.attach(core)
            if cc.rank in suspects:
                return None
            return (yield from election.elect(cc, 1, suspects))

        chip.sim.start_watchdog(100_000.0)
        res = run_spmd(chip, prog)
        return list(res.values), chip

    def test_lowest_live_rank_wins(self):
        vals, chip = self._elect({0})
        assert vals[0] is None
        assert all(v == 1 for i, v in enumerate(vals) if i != 0)
        flat = chip.metrics.flat()
        assert flat["member.elections"] == 1.0  # exactly one winner
        assert flat["member.claims"] >= 1.0

    def test_succession_skips_suspected_ranks(self):
        vals, chip = self._elect({0, 1})
        assert vals[0] is None and vals[1] is None
        assert all(v == 2 for i, v in enumerate(vals) if i not in (0, 1))
        assert chip.metrics.flat()["member.elections"] == 1.0

    def test_non_candidates_cannot_run(self):
        chip = SccChip(SccConfig(mesh_cols=2, mesh_rows=2))
        comm = Comm(chip)
        member = MembershipService(comm, root=0)
        election = ElectionService(comm, member)

        def prog(core):
            cc = comm.attach(core)
            if cc.rank != 3:
                return None
            with pytest.raises(ValueError):
                yield from election.elect(cc, 1, {3})
            return "raised"

        assert run_spmd(chip, prog).values[3] == "raised"


class TestCoordinatorFailover:
    """Tentpole scenarios: the coordinator/source itself crashes."""

    def test_early_root_crash_aborts_uniformly(self):
        # The root dies before any member holds the full payload: the
        # elected coordinator must issue a uniform abort.
        plan = FaultPlan((FaultSpec(FaultKind.CORE_CRASH, core=0, nth=5),))
        res, injector, chip, svc = run_service(plan)
        vals = list(res.values)
        assert vals[0] == "crashed"
        live = [v for i, v in enumerate(vals) if i != 0]
        assert all(v == [("aborted", False)] for v in live)
        # Epoch handoff: rank 1 took over and evicted the dead root.
        view = svc.member.views[1]
        assert view.epoch == 1 and 0 not in view
        assert svc.member.coord[1] == 1
        flat = chip.metrics.flat()
        assert flat["member.elections"] == 1.0
        assert flat["member.tte_us.count"] == 1.0

    def test_mid_stream_root_crash_completes_via_rebroadcast(self):
        # The root dies after the payload is fully staged: survivors
        # holding verified chunks vote, and the elected coordinator
        # designates a fully-delivered peer as the re-broadcast source.
        plan = FaultPlan((FaultSpec(FaultKind.CORE_CRASH, core=0, nth=40),))
        res, injector, chip, svc = run_service(plan)
        vals = list(res.values)
        assert vals[0] == "crashed"
        live = [v for i, v in enumerate(vals) if i != 0]
        assert all(v == [("ok", True)] for v in live)
        view = svc.member.views[1]
        assert view.epoch == 1 and 0 not in view
        assert svc.member.coord[1] == 1
        assert svc.survivor_tree(view).root == 1  # re-rooted
        assert chip.metrics.flat()["member.elections"] >= 1.0

    def test_second_broadcast_runs_from_the_new_coordinator(self):
        plan = FaultPlan((FaultSpec(FaultKind.CORE_CRASH, core=0, nth=40),))
        res, injector, chip, svc = run_service(plan, bcasts=2)
        vals = list(res.values)
        assert vals[0] == "crashed"
        live = [v for i, v in enumerate(vals) if i != 0]
        assert all(v == [("ok", True), ("ok", True)] for v in live)
        # No further suspicion: the handoff epoch carried the second
        # message without another recovery round.
        assert svc.member.views[1].epoch == 1

    @pytest.mark.parametrize("nth", [5, 40])
    def test_invariants_hold_through_failover(self, nth):
        plan = FaultPlan((FaultSpec(FaultKind.CORE_CRASH, core=0, nth=nth),))
        injector = FaultInjector(plan)
        chip = SccChip(
            SccConfig(), faults=injector, metrics=MetricsRegistry(),
            tracer=Tracer(enabled=True),
        )
        checker = InvariantChecker(lossless=False).attach(chip)
        comm = Comm(chip)
        svc = OcBcastService(comm)
        nbytes = THREE_CHUNKS
        payload = bytes(i % 251 for i in range(nbytes))

        def prog(core):
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            if cc.rank == 0:
                buf.write(payload)
            try:
                return (yield from svc.bcast(cc, buf, nbytes))
            except FaultInjected:
                return "crashed"

        chip.sim.start_watchdog(100_000.0)
        res = run_spmd(chip, prog)
        checker.check()  # I1..I6, including uniform agreement
        statuses = set(res.values)
        assert statuses in ({"crashed", "ok"}, {"crashed", "aborted"})


@pytest.mark.faults
class TestAcceptanceCampaign:
    """ISSUE 4's headline experiment: a 100-trial multi-fault campaign
    (interior crash mid-stream + corrupted data line per trial) where the
    service delivers to every live core 100/100 while the PR-1 FT layer
    and the baseline each fail in the majority of trials."""

    def test_hundred_trial_multi_fault_campaign(self):
        from repro.bench import FaultCampaign

        campaign = FaultCampaign(
            trials=100,
            seed=4,
            kinds=(FaultKind.CORE_CRASH, FaultKind.CORRUPT_DATA_WRITE),
            nbytes=THREE_CHUNKS,
            service=True,
            faults_per_trial=2,
            crash_site="interior",
            mid_stream=True,
            watchdog_interval=100_000.0,
        )
        result = campaign.run()
        # The service commits every trial with correct payloads on every
        # live member.
        assert result.service_counts["recovered"] == 100
        assert result.service_survival_rate == 1.0
        # The FT layer and the baseline each lose the majority.
        ft_failed = sum(
            result.ft_counts[o] for o in ("deadlock", "timeout", "corrupt")
        )
        base_failed = sum(
            result.baseline_counts[o]
            for o in ("deadlock", "timeout", "corrupt")
        )
        assert ft_failed > 50
        assert base_failed > 50
        # Fault-free service tax under 5%.
        assert result.service_overhead_pct < 5.0
        # Detection/repair telemetry came back from the trials.
        assert result.ttd_summary()["count"] >= 90
        assert result.ttr_summary()["count"] >= 90


@pytest.mark.faults
class TestFailoverAcceptanceCampaign:
    """This PR's headline experiment: 100 trials of a seeded root crash
    mid-stream of a three-chunk message on the 48-core chip.  Every
    trial elects a successor coordinator and terminates with uniform
    agreement -- re-broadcast completion when a fully-delivered survivor
    exists, a group-wide abort otherwise."""

    def test_hundred_trial_root_crash_campaign(self):
        from repro.bench import FaultCampaign

        campaign = FaultCampaign(
            trials=100,
            seed=5,
            kinds=(FaultKind.CORE_CRASH,),
            nbytes=THREE_CHUNKS,
            service=True,
            compare_baseline=False,
            crash_site="root",
            mid_stream=True,
            watchdog_interval=100_000.0,
        )
        result = campaign.run()
        counts = result.service_counts
        # 100/100 termination with uniform agreement; zero retry-budget
        # timeouts, deadlocks or split outcomes.
        assert result.service_agreement_rate == 1.0
        assert counts["recovered"] + counts["aborted"] == 100
        assert counts["deadlock"] == 0 and counts["timeout"] == 0
        assert counts["corrupt"] == 0 and counts["crashed"] == 0
        # Every trial elected a successor coordinator.
        assert result.tte_summary()["count"] == 100
        # Fault-free election-enabled service tax stays under 5%.
        assert result.service_overhead_pct < 5.0
