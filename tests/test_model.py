"""Tests for the analytical model: Formulas 1-16, Table 2, fitting."""

import pytest

from repro.model import TABLE_1, ModelParams, broadcast, fitting, primitives
from repro.scc import SccConfig


P = TABLE_1


class TestPrimitives:
    """Hand-computed spot checks of Figure 2's formulas with Table 1."""

    def test_mpb_write_latency_and_completion(self):
        # o_mpb + d*Lhop / + 2d*Lhop
        assert primitives.l_mpb_write(P, 4) == pytest.approx(0.126 + 4 * 0.005)
        assert primitives.c_mpb_write(P, 4) == pytest.approx(0.126 + 8 * 0.005)

    def test_mpb_read_latency_equals_completion(self):
        assert primitives.c_mpb_read(P, 9) == pytest.approx(0.126 + 18 * 0.005)
        assert primitives.l_mpb_read(P, 9) == primitives.c_mpb_read(P, 9)

    def test_mem_read_write(self):
        assert primitives.l_mem_write(P, 2) == pytest.approx(0.461 + 0.010)
        assert primitives.c_mem_write(P, 2) == pytest.approx(0.461 + 0.020)
        assert primitives.c_mem_read(P, 2) == pytest.approx(0.208 + 0.020)

    def test_put_mpb_formula7(self):
        # o_put + m*C_r(1) + m*C_w(d)
        m, d = 8, 5
        expected = 0.069 + m * (0.126 + 0.010) + m * (0.126 + 2 * 5 * 0.005)
        assert primitives.c_put_mpb(P, m, d) == pytest.approx(expected)

    def test_put_latency_excludes_last_ack(self):
        m, d = 8, 5
        diff = primitives.c_put_mpb(P, m, d) - primitives.l_put_mpb(P, m, d)
        assert diff == pytest.approx(d * 0.005)

    def test_put_mem_formula8(self):
        m, ds, dd = 4, 2, 3
        expected = (
            0.19
            + m * (0.208 + 2 * 2 * 0.005)
            + m * (0.126 + 2 * 3 * 0.005)
        )
        assert primitives.c_put_mem(P, m, ds, dd) == pytest.approx(expected)

    def test_get_mpb_formula11(self):
        m, d = 16, 9
        expected = 0.33 + m * (0.126 + 2 * 9 * 0.005) + m * (0.126 + 0.010)
        assert primitives.c_get_mpb(P, m, d) == pytest.approx(expected)
        assert primitives.l_get_mpb(P, m, d) == primitives.c_get_mpb(P, m, d)

    def test_get_mem_formula12(self):
        m, ds, dd = 4, 1, 4
        expected = (
            0.095
            + m * (0.126 + 0.010)
            + m * (0.461 + 2 * 4 * 0.005)
        )
        assert primitives.c_get_mem(P, m, ds, dd) == pytest.approx(expected)

    def test_zero_size_messages(self):
        assert primitives.c_put_mpb(P, 0, 1) == pytest.approx(0.069)
        assert primitives.c_get_mpb(P, 0, 1) == pytest.approx(0.33)
        assert primitives.l_put_mpb(P, 0, 1) == pytest.approx(0.069)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            primitives.c_mpb_read(P, 0)
        with pytest.raises(ValueError):
            primitives.c_put_mpb(P, -1, 1)

    def test_monotone_in_distance_and_size(self):
        for m in (1, 4):
            ts = [primitives.c_get_mpb(P, m, d) for d in range(1, 10)]
            assert ts == sorted(ts)
        for d in (1, 9):
            ts = [primitives.c_get_mpb(P, m, d) for m in range(1, 20)]
            assert ts == sorted(ts)

    def test_distance_spread_is_about_30_percent(self):
        """Paper Section 3.2: 1-hop vs 9-hop differ by only ~30% (large
        messages; tiny ones amortise nothing but stay under 30% too)."""
        spread16 = primitives.c_get_mpb(P, 16, 9) / primitives.c_get_mpb(P, 16, 1)
        assert 1.15 < spread16 < 1.35
        spread1 = primitives.c_get_mpb(P, 1, 9) / primitives.c_get_mpb(P, 1, 1)
        assert 1.0 < spread1 < 1.30


class TestBroadcastModel:
    def test_ocbcast_simple_single_chunk_is_formula13(self):
        m, k, nP = 64, 7, 48
        depth = 2  # log_7(48) levels
        expected = (
            primitives.c_put_mem(P, m)
            + depth * primitives.c_get_mpb(P, m, 1)
            + primitives.c_get_mem(P, m)
        )
        got = broadcast.ocbcast_latency_simple(nP, m, k, P)
        assert got == pytest.approx(expected)

    def test_binomial_simple_is_formula14(self):
        m, nP = 32, 48
        levels = 6
        expected = levels * (
            P.o_put_mem
            + m * primitives.c_mpb_write(P, 1)
            + primitives.c_get_mem(P, m)
        ) + m * primitives.c_mem_read(P, 1)
        got = broadcast.binomial_latency_simple(nP, m, P)
        assert got == pytest.approx(expected)

    def test_ocbcast_beats_binomial_in_the_model(self):
        for m in (1, 16, 64, 96, 192):
            oc = broadcast.ocbcast_latency_complete(48, m, 7, P)
            bi = broadcast.binomial_latency_complete(48, m, P)
            assert oc < bi

    def test_latency_slope_changes_past_chunk_size(self):
        """Figure 6a: the slope changes at M_oc = 96 lines -- extra chunks
        pipeline, so per-line cost drops below the first chunk's (which
        pays the full tree depth per line)."""
        lat = {m: broadcast.ocbcast_latency_simple(48, m, 7, P) for m in (1, 96, 192)}
        slope_first_chunk = (lat[96] - lat[1]) / 95
        slope_beyond = (lat[192] - lat[96]) / 96
        assert slope_beyond < 0.75 * slope_first_chunk

    def test_k47_worst_for_single_line(self):
        """Figure 6b: polling 47 doneFlags hurts tiny messages."""
        l47 = broadcast.ocbcast_latency_complete(48, 1, 47, P)
        l7 = broadcast.ocbcast_latency_complete(48, 1, 7, P)
        assert l47 > l7

    def test_monotone_in_message_size(self):
        for k in (2, 7, 47):
            ts = [
                broadcast.ocbcast_latency_complete(48, m, k, P)
                for m in range(1, 200, 7)
            ]
            assert ts == sorted(ts)

    def test_degenerate_cases(self):
        assert broadcast.ocbcast_latency_simple(1, 10, 7, P) == 0.0
        assert broadcast.ocbcast_latency_simple(48, 0, 7, P) == 0.0
        assert broadcast.binomial_latency_simple(1, 10, P) == 0.0
        with pytest.raises(ValueError):
            broadcast.ocbcast_latency_simple(0, 10, 7, P)


class TestThroughputModel:
    def test_formula15_value(self):
        """B_OC = Moc / (C_get_mpb(Moc) + C_get_mem(Moc)) ~ 36 MB/s."""
        b = broadcast.ocbcast_throughput_simple(P)
        assert b == pytest.approx(36.2, abs=0.5)

    def test_formula16_value_matches_table2(self):
        """Scatter-allgather ~ 13.3 MB/s for P=48 (paper: 13.38)."""
        b = broadcast.scatter_allgather_throughput_simple(48, P)
        assert b == pytest.approx(13.38, abs=0.4)

    def test_table2_ratios(self):
        t2 = broadcast.table2(48, P)
        for oc in (t2.oc_k2, t2.oc_k7, t2.oc_k47):
            assert 2.2 < oc / t2.scatter_allgather < 3.3

    def test_table2_near_paper_values(self):
        t2 = broadcast.table2(48, P)
        assert t2.oc_k7 == pytest.approx(34.30, rel=0.15)
        assert t2.scatter_allgather == pytest.approx(13.38, rel=0.15)

    def test_complete_throughput_below_simple(self):
        assert broadcast.ocbcast_throughput_complete(P, 7) < (
            broadcast.ocbcast_throughput_simple(P)
        )

    def test_p_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            broadcast.scatter_allgather_throughput_simple(1, P)


class TestParams:
    def test_from_config_round_trip(self):
        cfg = SccConfig(l_hop=0.007, o_mpb=0.2)
        mp = ModelParams.from_config(cfg)
        assert mp.l_hop == 0.007
        assert mp.o_mpb == 0.2
        assert mp.o_mem_w == cfg.o_mem_w

    def test_with_and_as_dict(self):
        mp = TABLE_1.with_(l_hop=0.01)
        assert mp.l_hop == 0.01
        assert TABLE_1.l_hop == 0.005
        assert set(mp.as_dict()) == set(fitting.PARAM_NAMES)


class TestFitting:
    def _synthetic_observations(self, params):
        obs = []
        for m in (1, 4, 8, 16):
            for d in (1, 3, 5, 9):
                obs.append(
                    fitting.Observation(
                        "put_mpb", m, 1, d, primitives.c_put_mpb(params, m, d)
                    )
                )
                obs.append(
                    fitting.Observation(
                        "get_mpb", m, d, 1, primitives.c_get_mpb(params, m, d)
                    )
                )
            for d in (1, 2, 3, 4):
                obs.append(
                    fitting.Observation(
                        "put_mem", m, d, 1, primitives.c_put_mem(params, m, d, 1)
                    )
                )
                obs.append(
                    fitting.Observation(
                        "get_mem", m, 1, d, primitives.c_get_mem(params, m, 1, d)
                    )
                )
        return obs

    def test_recovers_exact_parameters_from_noiseless_data(self):
        result = fitting.fit(self._synthetic_observations(TABLE_1))
        assert result.residual_rms < 1e-9
        for name, (fitted, ref, rel) in result.compare(TABLE_1).items():
            assert rel < 1e-6, name

    def test_recovers_perturbed_parameters(self):
        perturbed = TABLE_1.with_(l_hop=0.008, o_mpb=0.15, o_get_mpb=0.4)
        result = fitting.fit(self._synthetic_observations(perturbed))
        for name, (fitted, ref, rel) in result.compare(perturbed).items():
            assert rel < 1e-6, name

    def test_requires_all_kinds(self):
        obs = [
            fitting.Observation("put_mpb", m, 1, d, 1.0)
            for m in (1, 2, 3) for d in (1, 2, 3)
        ]
        with pytest.raises(ValueError, match="missing"):
            fitting.fit(obs)

    def test_requires_enough_observations(self):
        with pytest.raises(ValueError):
            fitting.fit([fitting.Observation("put_mpb", 1, 1, 1, 1.0)])

    def test_observation_validation(self):
        with pytest.raises(ValueError):
            fitting.Observation("bogus", 1, 1, 1, 1.0)
        with pytest.raises(ValueError):
            fitting.Observation("put_mpb", 0, 1, 1, 1.0)
        with pytest.raises(ValueError):
            fitting.Observation("put_mpb", 1, 0, 1, 1.0)
