"""Tests for the application kernels (numerics + backend equivalence)."""

import numpy as np
import pytest

from repro.apps import run_power_iteration, run_stencil
from repro.apps.power_iteration import (
    make_matrix,
    reference_power_iteration,
)
from repro.apps.stencil import reference_stencil


class TestStencil:
    def test_matches_reference_solution(self):
        res = run_stencil(n=24, ranks=4, iterations=15)
        assert np.allclose(res.grid, reference_stencil(24, 15))
        assert res.iterations == 15

    @pytest.mark.parametrize("backend", ["rma", "two_sided"])
    def test_both_backends_identical_numerics(self, backend):
        res = run_stencil(n=24, ranks=6, iterations=10, backend=backend)
        assert np.allclose(res.grid, reference_stencil(24, 10))

    def test_residuals_decrease(self):
        res = run_stencil(n=24, ranks=4, iterations=20, check_every=5)
        assert len(res.residuals) == 4
        assert res.residuals[-1] < res.residuals[0]

    def test_early_termination_on_tolerance(self):
        res = run_stencil(
            n=24, ranks=4, iterations=500, check_every=5, tolerance=0.5
        )
        assert res.iterations < 500
        assert res.residuals[-1] < 0.5

    def test_single_rank_runs(self):
        res = run_stencil(n=12, ranks=1, iterations=5)
        assert np.allclose(res.grid, reference_stencil(12, 5))

    def test_validation(self):
        with pytest.raises(ValueError):
            run_stencil(n=25, ranks=4)  # uneven rows
        with pytest.raises(ValueError):
            run_stencil(n=24, ranks=4, iterations=0)
        with pytest.raises(ValueError):
            run_stencil(n=96, ranks=96)  # more ranks than cores


class TestPowerIteration:
    def test_matches_reference(self):
        res = run_power_iteration(n=32, ranks=4, iterations=12)
        lam, vec = reference_power_iteration(make_matrix(32), 12)
        assert res.eigenvalue == pytest.approx(lam, abs=1e-9)
        assert np.allclose(np.abs(res.eigenvector), np.abs(vec))

    @pytest.mark.parametrize("backend", ["rma", "two_sided"])
    def test_backends_agree_exactly(self, backend):
        res = run_power_iteration(n=32, ranks=8, iterations=8, backend=backend)
        lam, _ = reference_power_iteration(make_matrix(32), 8)
        assert res.eigenvalue == pytest.approx(lam, abs=1e-9)

    def test_converges_toward_dominant_eigenvalue(self):
        # The test spectrum's top two eigenvalues are close (~3%), so
        # convergence is geometric but slow; check monotone approach.
        true_lam = float(np.max(np.linalg.eigvalsh(make_matrix(32))))
        short = run_power_iteration(n=32, ranks=4, iterations=10)
        long = run_power_iteration(n=32, ranks=4, iterations=80)
        assert abs(long.eigenvalue - true_lam) < abs(short.eigenvalue - true_lam)
        assert long.eigenvalue == pytest.approx(true_lam, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_power_iteration(n=30, ranks=4)
        with pytest.raises(ValueError):
            run_power_iteration(n=32, ranks=4, iterations=0)


class TestBackendPerformance:
    def test_collective_heavy_kernel_gains_from_rma(self):
        """Power iteration is allgather/allreduce bound: the RMA backend
        must be measurably faster at full chip (the Section 7 question)."""
        rma = run_power_iteration(n=96, ranks=48, iterations=5, backend="rma")
        two = run_power_iteration(n=96, ranks=48, iterations=5, backend="two_sided")
        assert rma.eigenvalue == pytest.approx(two.eigenvalue, abs=1e-12)
        assert rma.makespan < 0.85 * two.makespan

    def test_halo_bound_kernel_is_backend_neutral(self):
        """The stencil is nearest-neighbour bound: backends within 15%."""
        rma = run_stencil(n=48, ranks=24, iterations=8, backend="rma")
        two = run_stencil(n=48, ranks=24, iterations=8, backend="two_sided")
        ratio = two.makespan / rma.makespan
        assert 0.85 < ratio < 1.35


class TestNonblockingHalo:
    def test_numerics_identical_to_blocking(self):
        b = run_stencil(n=24, ranks=6, iterations=10, halo="blocking")
        nb = run_stencil(n=24, ranks=6, iterations=10, halo="nonblocking")
        assert np.allclose(b.grid, nb.grid)
        assert np.allclose(nb.grid, reference_stencil(24, 10))

    def test_nonblocking_is_not_slower(self):
        b = run_stencil(n=48, ranks=24, iterations=8, halo="blocking")
        nb = run_stencil(n=48, ranks=24, iterations=8, halo="nonblocking")
        assert nb.makespan <= 1.05 * b.makespan

    def test_invalid_halo_mode(self):
        with pytest.raises(ValueError):
            run_stencil(n=24, ranks=4, halo="psychic")
