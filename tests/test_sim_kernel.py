"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    DeadlockError,
    Event,
    Simulator,
    SimError,
    all_of,
    any_of,
)
from repro.sim.errors import Interrupted, ScheduleInPastError


def test_timeout_advances_clock():
    sim = Simulator()

    def prog():
        yield sim.timeout(1.5)
        yield sim.timeout(2.5)
        return "done"

    proc = sim.process(prog())
    sim.run()
    assert sim.now == 4.0
    assert proc.value == "done"


def test_zero_delay_timeout_runs_at_current_time():
    sim = Simulator()

    def prog():
        yield sim.timeout(0.0)
        return sim.now

    proc = sim.process(prog())
    sim.run()
    assert proc.value == 0.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ScheduleInPastError):
        sim.timeout(-1.0)


def test_event_value_delivery():
    sim = Simulator()
    ev = sim.event("data")

    def producer():
        yield sim.timeout(3.0)
        ev.succeed(42)

    def consumer():
        value = yield ev
        return value

    sim.process(producer())
    cons = sim.process(consumer())
    sim.run()
    assert cons.value == 42
    assert sim.now == 3.0


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event("pending")
    with pytest.raises(SimError):
        _ = ev.value


def test_processes_wait_on_processes():
    sim = Simulator()

    def child():
        yield sim.timeout(5.0)
        return "child-result"

    def parent():
        proc = sim.process(child())
        result = yield proc
        return result

    par = sim.process(parent())
    sim.run()
    assert par.value == "child-result"
    assert sim.now == 5.0


def test_same_time_events_fire_in_fifo_order():
    sim = Simulator()
    order = []

    def prog(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for i in range(5):
        sim.process(prog(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        log = []

        def prog(tag, delays):
            for d in delays:
                yield sim.timeout(d)
                log.append((sim.now, tag))

        sim.process(prog("a", [1.0, 2.0, 1.0]))
        sim.process(prog("b", [2.0, 1.0, 1.0]))
        sim.process(prog("c", [0.5, 3.5]))
        sim.run()
        return log

    assert build() == build()


def test_deadlock_detection_names_stuck_processes():
    sim = Simulator()
    ev = sim.event("never")

    def stuck():
        yield ev

    sim.process(stuck(), name="stucky")
    with pytest.raises(DeadlockError, match="stucky"):
        sim.run()


def test_run_until_stops_early():
    sim = Simulator()
    fired = []

    def prog():
        yield sim.timeout(10.0)
        fired.append(True)

    sim.process(prog())
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert not fired
    sim.run()
    assert fired and sim.now == 10.0


def test_process_crash_propagates():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    sim.process(bad(), name="bad")
    with pytest.raises(SimError, match="bad"):
        sim.run()


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def failer():
        yield sim.timeout(1.0)
        ev.fail(ValueError("nope"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert caught == ["nope"]


def test_yielding_non_event_fails_the_process():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad(), name="bad")
    with pytest.raises(SimError):
        sim.run()


def test_all_of_collects_values_in_order():
    sim = Simulator()
    evs = [sim.event(f"e{i}") for i in range(3)]

    def setter(i, delay):
        yield sim.timeout(delay)
        evs[i].succeed(i * 10)

    def waiter():
        values = yield all_of(sim, evs)
        return values

    # Fire out of order; results must keep input order.
    sim.process(setter(2, 1.0))
    sim.process(setter(0, 2.0))
    sim.process(setter(1, 3.0))
    w = sim.process(waiter())
    sim.run()
    assert w.value == [0, 10, 20]


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def waiter():
        values = yield all_of(sim, [])
        return values

    w = sim.process(waiter())
    sim.run()
    assert w.value == []


def test_any_of_returns_first():
    sim = Simulator()
    evs = [sim.event(f"e{i}") for i in range(3)]

    def setter(i, delay):
        yield sim.timeout(delay)
        if not evs[i].triggered:
            evs[i].succeed(f"v{i}")

    def waiter():
        result = yield any_of(sim, evs)
        return result

    sim.process(setter(1, 1.0))
    sim.process(setter(0, 2.0))
    sim.process(setter(2, 3.0))
    w = sim.process(waiter())
    sim.run()
    assert w.value == (1, "v1")


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(SimError):
        any_of(sim, [])


def test_interrupt_wakes_blocked_process():
    sim = Simulator()
    never = sim.event()
    caught = []

    def sleeper():
        try:
            yield never
        except Interrupted as exc:
            caught.append(exc.cause)
            yield sim.timeout(1.0)
        return "recovered"

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(2.0)
        proc.interrupt("wake-up")

    sim.process(interrupter())
    sim.run()
    assert caught == ["wake-up"]
    assert proc.value == "recovered"
    assert sim.now == 3.0


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)
        return 7

    proc = sim.process(quick())
    sim.run()
    proc.interrupt("late")
    sim.run()
    assert proc.value == 7


def test_late_callback_on_triggered_event_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x")
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    sim.process(waiter())
    sim.run()
    assert got == ["x"]


def test_step_executes_single_callback():
    sim = Simulator()
    marks = []

    def prog():
        yield sim.timeout(1.0)
        marks.append("a")
        yield sim.timeout(1.0)
        marks.append("b")

    sim.process(prog())
    assert sim.step()  # start the process
    assert sim.step()  # first timeout fires
    assert sim.step()  # process resumes, marks "a"
    assert marks == ["a"]


def test_queued_events_counter():
    sim = Simulator()
    assert sim.queued_events == 0
    sim.timeout(1.0)
    assert sim.queued_events == 1
