"""Shared fixtures: protocol-invariant checking for broadcast tests.

``check_invariants`` is a factory fixture: call it with a chip (whose
tracer must be enabled) and every attached
:class:`repro.obs.InvariantChecker` is verified at test teardown, so a
protocol regression fails the test that provoked it even when the test
itself only asserts payload delivery.  Pass ``lossless=False`` when a
fault plan is armed on purpose (dropped/corrupted writes are then the
*subject* of the test, not a bug).
"""

import pytest

from repro.obs import InvariantChecker


@pytest.fixture
def check_invariants():
    """Factory: ``check_invariants(chip, lossless=True, **kw)`` attaches
    an :class:`InvariantChecker` to ``chip`` and re-checks it at
    teardown.  Returns the checker for in-test assertions."""
    checkers: list[InvariantChecker] = []

    def attach(chip, *, lossless: bool = True, **kw) -> InvariantChecker:
        checker = InvariantChecker(lossless=lossless, **kw).attach(chip)
        checkers.append(checker)
        return checker

    yield attach
    for checker in checkers:
        checker.check()
