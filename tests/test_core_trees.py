"""Tests for propagation and notification trees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NotificationTree,
    PropagationTree,
    kary_children,
    kary_depth,
    kary_parent,
    topology_aware_order,
)
from repro.scc import SccChip, SccConfig


class TestKaryFunctions:
    def test_paper_example_figure5(self):
        """s=0, P=12, k=7: children of 0 are 1..7, children of 1 are 8..11."""
        assert kary_children(0, 0, 12, 7) == [1, 2, 3, 4, 5, 6, 7]
        assert kary_children(1, 0, 12, 7) == [8, 9, 10, 11]
        assert kary_children(2, 0, 12, 7) == []
        assert kary_parent(8, 0, 12, 7) == 1
        assert kary_parent(7, 0, 12, 7) == 0
        assert kary_parent(0, 0, 12, 7) is None

    def test_nonzero_root_wraps(self):
        assert kary_children(5, 5, 8, 3) == [6, 7, 0]
        assert kary_parent(0, 5, 8, 3) == 5
        assert kary_children(6, 5, 8, 3) == [1, 2, 3]

    def test_depth(self):
        assert kary_depth(1, 7) == 0
        assert kary_depth(2, 7) == 1
        assert kary_depth(8, 7) == 1
        assert kary_depth(9, 7) == 2
        assert kary_depth(48, 7) == 2
        assert kary_depth(48, 2) == 5
        assert kary_depth(48, 47) == 1

    @settings(max_examples=60, deadline=None)
    @given(
        size=st.integers(1, 100),
        k=st.integers(1, 50),
        root=st.integers(0, 99),
        rank=st.integers(0, 99),
    )
    def test_property_parent_child_inverse(self, size, k, root, rank):
        root %= size
        rank %= size
        for child in kary_children(rank, root, size, k):
            assert kary_parent(child, root, size, k) == rank
        parent = kary_parent(rank, root, size, k)
        if parent is not None:
            assert rank in kary_children(parent, root, size, k)

    @settings(max_examples=40, deadline=None)
    @given(size=st.integers(1, 80), k=st.integers(1, 10), root=st.integers(0, 79))
    def test_property_tree_spans_without_duplicates(self, size, k, root):
        root %= size
        seen = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for child in kary_children(node, root, size, k):
                assert child not in seen
                seen.add(child)
                frontier.append(child)
        assert seen == set(range(size))


class TestNotificationTree:
    def test_binary_tree_of_seven_children(self):
        """Figure 5's notification tree: parent notifies c1, c2; c1
        notifies c3, c4; c2 notifies c5, c6; c3 notifies c7."""
        t = NotificationTree(7, 2)
        assert t.notify_targets(0) == [1, 2]
        assert t.notify_targets(1) == [3, 4]
        assert t.notify_targets(2) == [5, 6]
        assert t.notify_targets(3) == [7]
        assert t.notify_targets(7) == []
        assert t.notifier_of(7) == 3
        assert t.depth() == 3

    def test_degree_one_is_a_chain(self):
        t = NotificationTree(4, 1)
        assert t.notify_targets(0) == [1]
        assert t.notify_targets(1) == [2]
        assert t.depth() == 4

    def test_high_degree_is_flat(self):
        t = NotificationTree(5, 5)
        assert t.notify_targets(0) == [1, 2, 3, 4, 5]
        assert t.depth() == 1

    def test_binary_is_never_deeper_than_unary_and_shallower_for_big_families(self):
        for j in range(1, 48):
            assert NotificationTree(j, 2).depth() <= NotificationTree(j, 1).depth()
        assert NotificationTree(47, 2).depth() < NotificationTree(47, 1).depth()

    def test_empty_family(self):
        t = NotificationTree(0, 2)
        assert t.notify_targets(0) == []
        assert t.depth() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            NotificationTree(-1, 2)
        with pytest.raises(ValueError):
            NotificationTree(3, 0)
        with pytest.raises(ValueError):
            NotificationTree(3, 2).notifier_of(0)
        with pytest.raises(ValueError):
            NotificationTree(3, 2).notify_targets(4)

    @settings(max_examples=40, deadline=None)
    @given(j=st.integers(0, 60), d=st.integers(1, 8))
    def test_property_every_child_reachable_once(self, j, d):
        t = NotificationTree(j, d)
        seen = set()
        frontier = [0]
        while frontier:
            slot = frontier.pop()
            for child in t.notify_targets(slot):
                assert child not in seen
                seen.add(child)
                frontier.append(child)
        assert seen == set(range(1, j + 1))


class TestPropagationTree:
    def test_default_order_is_id_based(self):
        tree = PropagationTree(12, 7, root=0)
        assert tree.children_of(0) == [1, 2, 3, 4, 5, 6, 7]
        assert tree.children_of(1) == [8, 9, 10, 11]
        assert tree.parent_of(11) == 1
        assert tree.is_leaf(11)
        assert not tree.is_leaf(1)

    def test_child_index(self):
        tree = PropagationTree(12, 7, root=0)
        assert tree.child_index(1) == 0
        assert tree.child_index(7) == 6
        assert tree.child_index(8) == 0
        with pytest.raises(ValueError):
            tree.child_index(0)

    def test_levels_partition_ranks(self):
        tree = PropagationTree(48, 7)
        levels = tree.levels()
        assert [len(lv) for lv in levels] == [1, 7, 40]
        flat = [r for lv in levels for r in lv]
        assert sorted(flat) == list(range(48))

    def test_custom_order(self):
        order = (2, 0, 1, 3)
        tree = PropagationTree(4, 2, root=2, order=order)
        assert tree.children_of(2) == [0, 1]
        assert tree.children_of(0) == [3]
        assert tree.parent_of(3) == 0

    def test_order_validation(self):
        with pytest.raises(ValueError):
            PropagationTree(4, 2, root=1, order=(0, 1, 2, 3))  # order[0] != root
        with pytest.raises(ValueError):
            PropagationTree(4, 2, root=0, order=(0, 1, 1, 3))  # not a permutation
        with pytest.raises(ValueError):
            PropagationTree(4, 0)
        with pytest.raises(ValueError):
            PropagationTree(4, 2, root=4)


class TestTopologyAwareOrder:
    def test_is_valid_permutation_with_root_first(self):
        chip = SccChip(SccConfig())
        dist = chip.mesh.core_distance
        order = topology_aware_order(48, 7, 0, dist)
        assert sorted(order) == list(range(48))
        assert order[0] == 0

    def test_reduces_total_parent_child_distance(self):
        chip = SccChip(SccConfig())
        dist = chip.mesh.core_distance
        k = 7

        def total_distance(tree):
            return sum(
                dist(tree.parent_of(r), r) for r in range(48) if tree.parent_of(r) is not None
            )

        id_tree = PropagationTree(48, k, root=0)
        topo_tree = PropagationTree(
            48, k, root=0, order=topology_aware_order(48, k, 0, dist)
        )
        assert total_distance(topo_tree) < total_distance(id_tree)

    def test_works_for_every_k_and_nonzero_root(self):
        chip = SccChip(SccConfig())
        dist = chip.mesh.core_distance
        for k in (1, 2, 7, 47):
            order = topology_aware_order(48, k, 13, dist)
            assert sorted(order) == list(range(48))
            assert order[0] == 13
