"""Property-based protocol robustness: random mixed workloads.

Each example generates a random little SPMD application -- a sequence of
collectives with varying roots, sizes and engines, plus point-to-point
traffic -- and checks that every byte lands where it should and the run
drains without deadlock.  This is the strongest check we have that the
sequence-numbered flag protocols compose: any lost wake-up, buffer
recycle hazard or stale-flag bug shows up as a DeadlockError or a
payload mismatch.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Comm,
    ContentionMode,
    OcBcast,
    OcBcastConfig,
    OsagBcast,
    SccChip,
    SccConfig,
    run_spmd,
)
from repro.rcce import IrcceState, pipelined_recv, pipelined_send

FAST = SccConfig(contention_mode=ContentionMode.IDEAL)

slow_ok = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@slow_ok
@given(
    P=st.integers(3, 10),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["oc", "osag"]),  # engine per broadcast
            st.integers(0, 9),                # root (mod P)
            st.integers(1, 400),              # nbytes
        ),
        min_size=1,
        max_size=5,
    ),
)
def test_random_broadcast_sequences_mix_engines(P, ops):
    """Back-to-back broadcasts alternating between OC-Bcast and the
    one-sided scatter-allgather, sharing one chip, arbitrary roots."""
    chip = SccChip(FAST)
    comm = Comm(chip, ranks=list(range(P)))
    oc = OcBcast(comm, OcBcastConfig(k=3, chunk_lines=4))
    osag = OsagBcast(comm, slice_lines=4, scatter_payload_lines=8)
    payloads = [
        bytes((i * 31 + n * 7 + 3) % 256 for i in range(nbytes))
        for n, (_, _, nbytes) in enumerate(ops)
    ]
    results = {n: {} for n in range(len(ops))}

    def program(core):
        cc = comm.attach(core)
        for n, (engine, root, nbytes) in enumerate(ops):
            root %= P
            buf = cc.alloc(nbytes)
            if cc.rank == root:
                buf.write(payloads[n])
            if engine == "oc":
                yield from oc.bcast(cc, root, buf, nbytes)
            else:
                yield from osag.bcast(cc, root, buf, nbytes)
            results[n][cc.rank] = buf.read()

    run_spmd(chip, program, core_ids=list(range(P)))
    for n in range(len(ops)):
        assert all(results[n][r] == payloads[n] for r in range(P)), n


@slow_ok
@given(
    P=st.integers(2, 8),
    transfers=st.lists(
        st.tuples(
            st.integers(0, 7),   # src (mod P)
            st.integers(0, 7),   # dst offset (1..P-1 added)
            st.integers(0, 900), # nbytes
            st.booleans(),       # pipelined (iRCCE) or plain send/recv
        ),
        min_size=1,
        max_size=6,
    ),
)
def test_random_point_to_point_schedules(P, transfers):
    """Random sequences of pair transfers (blocking and iRCCE-pipelined)
    across random pairs, executed in a globally consistent order."""
    chip = SccChip(FAST)
    comm = Comm(chip, ranks=list(range(P)))
    st_ircce = IrcceState(comm, half_lines=4)
    plan = []
    for n, (src, doff, nbytes, pipelined) in enumerate(transfers):
        src %= P
        dst = (src + 1 + doff % (P - 1)) % P
        payload = bytes((i * 13 + n) % 256 for i in range(nbytes))
        plan.append((src, dst, payload, pipelined))
    got = {}

    def program(core):
        cc = comm.attach(core)
        for n, (src, dst, payload, pipelined) in enumerate(plan):
            if cc.rank == src:
                buf = cc.alloc(len(payload))
                buf.write(payload)
                if pipelined:
                    yield from pipelined_send(cc, st_ircce, dst, buf, len(payload))
                else:
                    yield from cc.send(dst, buf, len(payload))
            elif cc.rank == dst:
                buf = cc.alloc(len(payload))
                if pipelined:
                    yield from pipelined_recv(cc, st_ircce, src, buf, len(payload))
                else:
                    yield from cc.recv(src, buf, len(payload))
                got[n] = buf.read()

    run_spmd(chip, program, core_ids=list(range(P)))
    for n, (_, _, payload, _) in enumerate(plan):
        if payload:
            assert got[n] == payload, n
        else:
            assert got.get(n, b"") == b""


@slow_ok
@given(
    P=st.integers(3, 8),
    n_targets=st.integers(1, 4),
    nbytes=st.integers(1, 600),
    stagger=st.lists(st.floats(0.0, 50.0), min_size=8, max_size=8),
)
def test_random_nonblocking_fan_in(P, n_targets, nbytes, stagger):
    """Rank 0 posts irecvs from several peers that send at random times
    (blocking sends); wait_all must collect them all regardless of
    arrival order."""
    n_targets = min(n_targets, P - 1)
    chip = SccChip(FAST)
    comm = Comm(chip, ranks=list(range(P)))
    senders = list(range(1, n_targets + 1))
    payloads = {s: bytes((i + s * 37) % 256 for i in range(nbytes)) for s in senders}
    got = {}

    def program(core):
        cc = comm.attach(core)
        if cc.rank == 0:
            bufs = {s: cc.alloc(nbytes) for s in senders}
            reqs = [cc.irecv(s, bufs[s], nbytes) for s in senders]
            yield from cc.wait_all(reqs)
            assert all(r.done for r in reqs)
            for s in senders:
                got[s] = bufs[s].read()
        elif cc.rank in senders:
            yield core.compute(stagger[cc.rank % len(stagger)])
            buf = cc.alloc(nbytes)
            buf.write(payloads[cc.rank])
            yield from cc.send(0, buf, nbytes)

    run_spmd(chip, program, core_ids=list(range(P)))
    assert got == payloads


@slow_ok
@given(
    P=st.integers(2, 8),
    epochs=st.integers(1, 3),
    nbytes=st.integers(1, 300),
)
def test_random_mpmd_pubsub(P, epochs, nbytes):
    """MPMD channel under random sizes/world shapes: every subscriber
    sees every message, in order."""
    from repro.core import MpmdBcast

    chip = SccChip(FAST)
    comm = Comm(chip, ranks=list(range(P)))
    mpmd = MpmdBcast(comm, publisher=0, k=3, chunk_lines=4)
    mpmd.start_daemons(chip)
    msgs = [bytes((i + e * 53) % 256 for i in range(nbytes)) for e in range(epochs)]
    got = {}

    def program(core):
        cc = comm.attach(core)
        if cc.rank == 0:
            for m in msgs:
                buf = cc.alloc(nbytes)
                buf.write(m)
                yield from mpmd.publish(cc, buf, nbytes)
            yield from mpmd.stop_daemons(cc)
        else:
            out = []
            for _ in msgs:
                out.append((yield from mpmd.deliver(cc)))
            got[cc.rank] = out

    run_spmd(chip, program, core_ids=list(range(P)))
    assert all(got[r] == msgs for r in range(1, P))
