"""Tests for chip configuration validation and derived values."""

import pytest

from repro.scc import ContentionMode, SccConfig
from repro.scc.config import CACHE_LINE, MPB_BYTES, MPB_LINES


def test_defaults_describe_the_scc():
    cfg = SccConfig()
    assert cfg.num_tiles == 24
    assert cfg.num_cores == 48
    assert cfg.mpb_bytes == 8192
    assert cfg.mpb_lines == 256
    assert cfg.contention_mode is ContentionMode.BATCH


def test_module_constants():
    assert CACHE_LINE == 32
    assert MPB_BYTES == 8192
    assert MPB_LINES == 256


def test_table1_defaults():
    cfg = SccConfig()
    assert cfg.l_hop == 0.005
    assert cfg.o_mpb == 0.126
    assert cfg.o_mem_w == 0.461
    assert cfg.o_mem_r == 0.208
    assert cfg.o_put_mpb == 0.069
    assert cfg.o_get_mpb == 0.33
    assert cfg.o_put_mem == 0.19
    assert cfg.o_get_mem == 0.095


def test_with_creates_modified_copy():
    cfg = SccConfig()
    cfg2 = cfg.with_(mesh_cols=8, jitter=0.05)
    assert cfg2.mesh_cols == 8
    assert cfg2.jitter == 0.05
    assert cfg.mesh_cols == 6  # original untouched
    assert cfg2.num_cores == 8 * 4 * 2


@pytest.mark.parametrize(
    "kwargs",
    [
        {"mesh_cols": 0},
        {"mesh_rows": 0},
        {"cores_per_tile": 0},
        {"mpb_bytes": 100},  # not a cache-line multiple
        {"l_hop": -0.1},
        {"o_mpb": -1.0},
        {"t_mpb_port": -0.01},
        {"t_mpb_port_write": -0.01},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        SccConfig(**kwargs)


def test_scaled_mesh_core_count():
    cfg = SccConfig(mesh_cols=16, mesh_rows=16, cores_per_tile=4)
    assert cfg.num_cores == 1024
