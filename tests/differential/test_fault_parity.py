"""Fault-plan reuse across backends: the same ``repro.faults`` plan
routed through the transport write hooks classifies identically on the
SCC MPBs and on the asyncio rank stores.

Two levels:

- *write-path A/B*: drive a hand-built, identical sequence of protocol
  writes against both backends' stores and compare every landed status,
  injector counter and injection record (kind + site);
- *protocol-level*: the ``drop_flag`` scenario (one dropped doneFlag
  write, masked by the acked re-send) must change no decision on either
  backend, while both injectors report exactly one injection and at
  least one recovery.
"""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.transport import AsyncioNetwork
from repro.transport.scenarios import SCENARIOS, cached_decisions, run_scc
from repro.scc import SccChip, SccConfig
from repro.faults.injector import FaultInjector
from repro.sim import Tracer

pytestmark = pytest.mark.differential


def _scc_world(plan):
    chip = SccChip(
        SccConfig(mesh_cols=2, mesh_rows=2),
        tracer=Tracer(enabled=False),
        faults=FaultInjector(plan),
    )
    return chip.mpbs, chip.faults


def _aio_world(plan):
    net = AsyncioNetwork(8, plan=plan)
    return net.stores, net.faults


#: One protocol write: (source core, destination store, offset, payload, op).
WRITE_SEQUENCE = [
    (0, 1, 0, b"\x11" * 32, "flag"),
    (0, 2, 0, b"\x22" * 32, "flag"),
    (1, 2, 32, b"\x33" * 64, "data"),
    (3, 2, 0, b"\x44" * 32, "flag"),  # 2nd flag write into store 2
    (2, 1, 96, b"\x55" * 32, "data"),
    (0, 1, 64, b"\x66" * 32, "flag"),
    (1, 0, 0, b"\x77" * 96, "data"),
]


def _drive(stores, sequence=WRITE_SEQUENCE):
    return [
        stores[dst].write_bytes(off, payload, source=src, op=op)
        for (src, dst, off, payload, op) in sequence
    ]


def test_write_classification_parity():
    """DROP_FLAG_WRITE and CORRUPT_DATA_WRITE fire at the same occurrence
    with the same landed status, counters and record sites on both
    backends."""
    def plan():
        return FaultPlan(
            (
                FaultSpec(FaultKind.DROP_FLAG_WRITE, core=2, nth=2),
                FaultSpec(FaultKind.CORRUPT_DATA_WRITE, core=1, nth=1),
            ),
            label="parity",
        )

    scc_stores, scc_inj = _scc_world(plan())
    aio_stores, aio_inj = _aio_world(plan())

    scc_landed = _drive(scc_stores)
    aio_landed = _drive(aio_stores)

    assert scc_landed == aio_landed
    # Spec cores are destination stores: the 2nd flag write into store 2
    # is dropped, the 1st data write into store 1 is corrupted.
    assert scc_landed == ["ok", "ok", "ok", "dropped", "corrupted", "ok", "ok"]
    for inj in (scc_inj, aio_inj):
        assert [(i.spec.kind, i.site) for i in inj.injected] == [
            (FaultKind.DROP_FLAG_WRITE, "mpb2@0 (from core3)"),
            (FaultKind.CORRUPT_DATA_WRITE, "mpb1@96 (from core2)"),
        ]
    assert scc_inj.counts["flag_write"] == aio_inj.counts["flag_write"] == 4
    assert scc_inj.counts["data_write"] == aio_inj.counts["data_write"] == 3
    # The corrupted write really landed bit-flipped, identically.
    assert scc_stores[1].read_bytes(96, 32) == aio_stores[1].read_bytes(96, 32)
    assert scc_stores[1].read_bytes(96, 1) == b"\xaa"  # 0x55 ^ 0xff


def test_link_down_window_parity():
    """A LINK_DOWN window armed through the mesh hook swallows in-window
    protocol writes identically (burst drops, not per-write records)."""
    def plan():
        return FaultPlan(
            (FaultSpec(FaultKind.LINK_DOWN, core=1, nth=1, duration=50.0),),
            label="linkdown",
        )

    for stores, inj in (_scc_world(plan()), _aio_world(plan())):
        # Core 1's first mesh transaction arms the window at t=0..50.
        assert inj.link_stall(1, 3) == 0.0
        # Writes from (or to) core 1 inside the window vanish silently.
        assert stores[3].write_bytes(0, b"\x01" * 32, source=1, op="flag") == "dropped"
        assert stores[1].write_bytes(0, b"\x02" * 32, source=0, op="data") == "dropped"
        # Unrelated links are untouched.
        assert stores[2].write_bytes(0, b"\x03" * 32, source=0, op="flag") == "ok"
        assert inj.burst_dropped == 2
        # Burst drops are environment, not per-write plan records.
        assert [i.spec.kind for i in inj.injected] == [FaultKind.LINK_DOWN]


def test_plan_untouched_writes_identical():
    """With no plan at all, both stores land everything verbatim."""
    chip = SccChip(SccConfig(mesh_cols=2, mesh_rows=2), tracer=Tracer(enabled=False))
    net = AsyncioNetwork(8)
    assert _drive(chip.mpbs) == _drive(net.stores) == ["ok"] * len(WRITE_SEQUENCE)
    for core in (0, 1, 2):
        assert (
            chip.mpbs[core].read_bytes(0, 128) == net.stores[core].read_bytes(0, 128)
        )


@pytest.mark.parametrize("backend", ["scc", "asyncio"])
def test_drop_flag_masked_by_acked_resend(backend):
    """The dropped doneFlag-path write is recovered by the acked re-send:
    decisions equal the fault-free twin, and the injector on each backend
    reports exactly one injection and at least one recovery."""
    faulted_text, _, outcomes, injected, recovered = cached_decisions(
        backend, "drop_flag", 0
    )
    clean_text, _, clean_outcomes, _, _ = cached_decisions(
        backend, "drop_flag", 0, False
    )
    assert outcomes == clean_outcomes == ("ok",) * 8
    assert faulted_text == clean_text
    assert injected == 1
    assert recovered >= 1


def test_scc_classification_unchanged_by_refactor():
    """Seeded A/B pin: the SCC run of the drop_flag scenario classifies
    the fault exactly as the pre-refactor chip paths did -- the first
    flag write into core 3's MPB is dropped, everything still succeeds."""
    res = run_scc("drop_flag", 0)
    assert res.outcomes == ("ok",) * SCENARIOS["drop_flag"].nranks
    [record] = res.faults.injected
    assert record.spec.kind is FaultKind.DROP_FLAG_WRITE
    assert record.site.startswith("mpb3@")
    assert res.faults.counts["flag_write@core3"] >= 1
