"""Golden decision-trace digests for the differential scenarios.

Pins the sha256 of the canonical decision stream (seed 0, SCC backend)
for each differential scenario.  Separate from ``tests/golden_digests.json``
(the full-trace goldens): decision digests canonicalise away timing, so
they survive timing-model changes that legitimately refresh the trace
goldens -- a decision digest changing means the *protocol logic* changed.

Refresh intentionally with:

    PYTHONPATH=src python tests/differential/test_golden_decisions.py --record
"""

import json
import sys
from pathlib import Path

import pytest

from repro.transport.scenarios import DIFFERENTIAL_NAMES, cached_decisions

pytestmark = pytest.mark.differential

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden_decision_digests.json"

SEED = 0


def _digest(name: str) -> str:
    _, digest, _, _, _ = cached_decisions("scc", name, SEED)
    return digest


def _load_goldens() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden decision digests missing at {GOLDEN_PATH}; record them "
            f"with: PYTHONPATH=src python {__file__} --record"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(DIFFERENTIAL_NAMES))
def test_golden_decision_digest(name):
    goldens = _load_goldens()
    assert name in goldens, (
        f"no golden decision digest for {name!r}; record with: "
        f"PYTHONPATH=src python {__file__} --record"
    )
    assert _digest(name) == goldens[name], (
        f"decision digest for {name!r} changed -- the protocol made "
        f"different decisions, not just different timings.  If intended, "
        f"refresh with: PYTHONPATH=src python {__file__} --record"
    )


def test_goldens_have_no_orphans():
    assert set(_load_goldens()) == set(DIFFERENTIAL_NAMES)


def _record() -> None:
    digests = {name: _digest(name) for name in DIFFERENTIAL_NAMES}
    GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    print(f"recorded {len(digests)} decision digests to {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--record" in sys.argv:
        _record()
    else:
        print(__doc__)
