"""Cross-backend differential tests: same seed, two backends, same
decisions.

Each scenario replays on the SCC chip-model backend and the asyncio
event-loop backend (with a uniform-delay model nothing like the SCC's
calibrated timings) across many seeds; the canonical decision traces
(per-rank program order, time-free) must be identical, while the
latencies are free to -- and do -- diverge.
"""

import pytest

from repro.transport.scenarios import (
    DIFFERENTIAL_NAMES,
    cached_decisions,
    run_asyncio,
    run_scc,
)

pytestmark = pytest.mark.differential

SEEDS = range(10)


@pytest.mark.parametrize("name", DIFFERENTIAL_NAMES)
@pytest.mark.parametrize("seed", SEEDS)
def test_decisions_identical_across_backends(name, seed):
    scc_text, scc_digest, scc_outcomes, _, _ = cached_decisions("scc", name, seed)
    aio_text, aio_digest, aio_outcomes, _, _ = cached_decisions(
        "asyncio", name, seed
    )
    assert scc_outcomes == aio_outcomes
    assert scc_text == aio_text
    assert scc_digest == aio_digest


@pytest.mark.parametrize("name", DIFFERENTIAL_NAMES)
def test_decision_stream_is_nonempty(name):
    """Equality must not be vacuous: every scenario produces decisions."""
    text, _, _, _, _ = cached_decisions("scc", name, 0)
    assert text.strip(), f"scenario {name} produced an empty decision stream"


def test_ft_broadcast_outcomes():
    _, _, outcomes, _, _ = cached_decisions("scc", "ft_broadcast", 0)
    assert outcomes == ("ok",) * 8


def test_root_crash_election_reaches_expected_states():
    text, _, outcomes, _, _ = cached_decisions("scc", "root_crash_election", 0)
    # The source dies before staging; survivors elect rank 1 and, with no
    # chunk holders anywhere, abort the broadcast.
    assert outcomes == ("crashed",) + ("aborted",) * 7
    assert "member.elect.won" in text
    assert "member.view_install" in text


def test_byz_quorum_commits_despite_liar():
    text, _, outcomes, _, _ = cached_decisions("scc", "byz_quorum", 0)
    assert outcomes == ("ok",) * 12
    assert "rbc.outcome" in text


def test_latencies_diverge_while_decisions_agree():
    """The equivalence is meaningful only if the two backends really do
    run on different clocks: compare completion times of the same run."""
    scc = run_scc("ft_broadcast", 0)
    aio = run_asyncio("ft_broadcast", 0)
    assert scc.digest == aio.digest
    scc_end = max(r.time for r in scc.records)
    aio_end = max(r.time for r in aio.records)
    assert scc_end != aio_end
