"""Tests for symmetric MPB allocation."""

import pytest

from repro.rcce import MpbLayout, MpbRegion


def test_alloc_is_sequential_and_line_granular():
    layout = MpbLayout(256)
    a = layout.alloc_lines(10)
    b = layout.alloc_lines(5)
    assert a.offset == 0
    assert a.nbytes == 320
    assert b.offset == 320
    assert layout.used_lines == 15
    assert layout.free_lines == 241


def test_alloc_bytes_rounds_up_to_lines():
    layout = MpbLayout(256)
    r = layout.alloc_bytes(33)
    assert r.lines == 2
    assert r.nbytes == 64


def test_exhaustion_raises():
    layout = MpbLayout(16)
    layout.alloc_lines(16)
    with pytest.raises(MemoryError):
        layout.alloc_lines(1)


def test_negative_alloc_rejected():
    layout = MpbLayout(16)
    with pytest.raises(ValueError):
        layout.alloc_lines(-1)


def test_zero_alloc_allowed():
    layout = MpbLayout(16)
    r = layout.alloc_lines(0)
    assert r.lines == 0


class TestMpbRegion:
    def test_line_offsets(self):
        r = MpbRegion(64, 128)  # 4 lines starting at byte 64
        assert r.lines == 4
        assert r.line(0) == 64
        assert r.line(3) == 64 + 96
        with pytest.raises(IndexError):
            r.line(4)

    def test_sub_region(self):
        r = MpbRegion(0, 320)
        s = r.sub(2, 3)
        assert s.offset == 64
        assert s.lines == 3
        with pytest.raises(IndexError):
            r.sub(8, 3)
        with pytest.raises(IndexError):
            r.sub(-1, 1)
