"""Cross-validation of the ANALYTIC engine and adaptive-fidelity campaigns.

Three guarantees pin the engine down:

- **Bit-exactness vs IDEAL**: the engine is a closed-form replay of the
  simulator's IDEAL-mode protocol, so its latencies must equal an IDEAL
  simulation to the last float across meshes, sizes and fan-outs.
- **Bounded error vs EXACT**: with contention on, the kernel's port
  queueing adds delay the closed form ignores; the envelope must stay
  under 2% for the paper's configurations.
- **Classification identity**: an adaptive-fidelity campaign must
  classify every trial exactly as the all-kernel campaign does --
  fault-free trials are deterministic replicas of the reference run, so
  serving them from memo is a pure speedup, never an approximation.

Note on comparisons: ``TrialRun.detail`` strings of watchdog-killed runs
name *one* of the stalled processes and the pick is not deterministic
across executions (pre-existing kernel behaviour); outcomes, latencies
and counters are deterministic, so those are what identity means here.
"""

import numpy as np
import pytest

from repro.bench import BcastSpec, FaultCampaign, run_broadcast
from repro.bench.harness import analytic_engine_for, sweep_broadcast
from repro.bench.parallel import run_campaign_parallel
from repro.model import TABLE_1, broadcast as model_bcast
from repro.obs import MetricsRegistry
from repro.scc import (
    AnalyticEngine,
    AnalyticUnsupported,
    ContentionMode,
    SccConfig,
    resolve_contention_mode,
)
from repro.scc.analytic import analytic_supported
from repro.scc.config import CACHE_LINE

#: (cols, rows) meshes spanning n = 4 .. 48 cores.
MESHES = [(2, 1), (2, 2), (3, 2), (6, 2), (6, 4)]
#: Sizes in cache lines covering 1 chunk, chunk+1 (pipeline fill) and
#: multi-chunk drains.
SIZES_CL = [1, 96, 97, 192]


def _cfg(cols: int, rows: int, mode: ContentionMode) -> SccConfig:
    return SccConfig(mesh_cols=cols, mesh_rows=rows, contention_mode=mode)


class TestAnalyticVsKernel:
    @pytest.mark.parametrize("cols,rows", MESHES)
    def test_matches_ideal_bit_exactly(self, cols, rows):
        spec = BcastSpec("oc", k=7)
        engine = analytic_engine_for(spec, _cfg(cols, rows, ContentionMode.IDEAL))
        for m in SIZES_CL:
            sim = run_broadcast(
                spec, m * CACHE_LINE,
                config=_cfg(cols, rows, ContentionMode.IDEAL),
                iters=2, warmup=1,
            )
            ana = engine.evaluate(m * CACHE_LINE, iters=2, warmup=1)
            assert ana.latencies == sim.latencies, (cols, rows, m)
            assert ana.measured_span == sim.measured_span, (cols, rows, m)

    @pytest.mark.parametrize("cols,rows", [(2, 1), (3, 2), (6, 2), (6, 4)])
    @pytest.mark.parametrize("m", [96, 192])
    def test_within_two_percent_of_exact(self, cols, rows, m):
        spec = BcastSpec("oc", k=7)
        sim = run_broadcast(
            spec, m * CACHE_LINE,
            config=_cfg(cols, rows, ContentionMode.EXACT),
            iters=1, warmup=0,
        )
        ana = analytic_engine_for(
            spec, _cfg(cols, rows, ContentionMode.EXACT)
        ).evaluate(m * CACHE_LINE, iters=1)
        rel = abs(ana.mean_latency - sim.mean_latency) / sim.mean_latency
        assert rel < 0.02, (cols, rows, m, sim.mean_latency, ana.mean_latency)

    @pytest.mark.parametrize("k", [2, 47])
    def test_fanout_variants_match_ideal(self, k):
        spec = BcastSpec("oc", k=k)
        cfg = SccConfig(contention_mode=ContentionMode.IDEAL)
        sim = run_broadcast(spec, 96 * CACHE_LINE, config=cfg, iters=1, warmup=0)
        ana = analytic_engine_for(spec, cfg).evaluate(96 * CACHE_LINE, iters=1)
        assert ana.latencies == sim.latencies

    def test_batch_equals_scalar_evaluate(self):
        engine = AnalyticEngine(k=7)
        sizes = [m * CACHE_LINE for m in SIZES_CL]
        batch = engine.evaluate_batch(sizes, iters=2, warmup=1)
        for nbytes, res in zip(sizes, batch):
            solo = engine.evaluate(nbytes, iters=2, warmup=1)
            assert res.latencies == solo.latencies
            assert res.measured_span == solo.measured_span

    def test_metrics_match_kernel_registry(self):
        spec = BcastSpec("oc", k=7)
        reg = MetricsRegistry()
        run_broadcast(
            spec, 96 * CACHE_LINE,
            config=SccConfig(contention_mode=ContentionMode.IDEAL),
            iters=2, warmup=1, metrics=reg,
        )
        flat = reg.flat()
        ana = analytic_engine_for(
            spec, SccConfig(contention_mode=ContentionMode.IDEAL)
        ).evaluate(96 * CACHE_LINE, iters=2, warmup=1)
        for name, value in ana.metrics.items():
            assert flat.get(name) == value, name

    def test_harness_dispatch_and_sweep(self):
        cfg = SccConfig(contention_mode=ContentionMode.ANALYTIC)
        res = run_broadcast(BcastSpec("oc", k=7), 96 * CACHE_LINE, config=cfg)
        ideal = run_broadcast(
            BcastSpec("oc", k=7), 96 * CACHE_LINE,
            config=SccConfig(contention_mode=ContentionMode.IDEAL),
        )
        assert res.verified
        assert res.latencies == ideal.latencies
        out = sweep_broadcast([BcastSpec("oc", k=7)], [1, 96], config=cfg)
        assert [r.cache_lines for r in out["OC-Bcast k=7"]] == [1, 96]


class TestAnalyticUnsupported:
    def test_jitter_rejected(self):
        cfg = SccConfig(jitter=0.05)
        assert analytic_supported(cfg) is not None
        with pytest.raises(AnalyticUnsupported):
            AnalyticEngine(cfg)

    def test_non_oc_algorithm_rejected(self):
        cfg = SccConfig(contention_mode=ContentionMode.ANALYTIC)
        with pytest.raises(AnalyticUnsupported):
            run_broadcast(BcastSpec("binomial"), 96 * CACHE_LINE, config=cfg)

    def test_mode_resolution(self):
        assert resolve_contention_mode("Analytic") is ContentionMode.ANALYTIC
        assert (resolve_contention_mode(ContentionMode.EXACT)
                is ContentionMode.EXACT)
        with pytest.raises(ValueError, match="unknown contention mode"):
            resolve_contention_mode("speedy")


def _classification(run):
    if run is None:
        return None
    return (run.outcome, run.latency, run.n_injected, run.n_recovered,
            run.n_evicted)


def _campaign(fidelity: str, **kw) -> FaultCampaign:
    return FaultCampaign(
        trials=24, seed=11, compare_baseline=False,
        fault_rate=0.3, fidelity=fidelity, **kw,
    )


class TestAdaptiveFidelity:
    def assert_identical(self, exact, adaptive):
        assert exact.ft_counts == adaptive.ft_counts
        assert exact.baseline_counts == adaptive.baseline_counts
        assert exact.service_counts == adaptive.service_counts
        assert exact.base_latency == adaptive.base_latency
        assert exact.ft_latency == adaptive.ft_latency
        assert exact.timeline == adaptive.timeline
        for e, a in zip(exact.trials, adaptive.trials):
            assert e.plan == a.plan
            assert _classification(e.ft) == _classification(a.ft), e.index
            assert _classification(e.baseline) == _classification(a.baseline)
            assert _classification(e.service) == _classification(a.service)

    def test_classifications_identical_to_all_exact(self):
        exact = _campaign("exact").run()
        adaptive = _campaign("adaptive").run()
        self.assert_identical(exact, adaptive)
        assert adaptive.fidelity is not None
        assert not adaptive.fidelity["degraded"]
        assert adaptive.fidelity["n_analytic"] > 0
        assert (adaptive.fidelity["n_analytic"]
                + adaptive.fidelity["n_replayed"] == exact.n_trials)

    def test_parallel_adaptive_identical(self):
        exact = _campaign("exact").run()
        adaptive = run_campaign_parallel(_campaign("adaptive"), jobs=2)
        self.assert_identical(exact, adaptive)

    def test_byz_campaign_degrades_to_kernel(self):
        camp = FaultCampaign(
            trials=4, seed=3, byz=True, compare_baseline=False,
            fault_rate=0.5, fidelity="adaptive",
        )
        res = camp.run()
        assert res.fidelity is not None
        assert res.fidelity["degraded"]
        assert res.fidelity["n_analytic"] == 0

    def test_unmodelled_kinds_degrade_to_kernel(self):
        # Chaos/composite vocabularies: a campaign mixing in a fault
        # kind the analytic reference cannot model (time-window bursts,
        # core pauses, adversaries) must degrade to all-kernel execution
        # and say why -- while classifying identically to exact.
        from repro.faults import FaultKind

        kw = dict(
            trials=6, seed=7, compare_baseline=False, fault_rate=0.5,
            kinds=(FaultKind.DROP_FLAG_WRITE, FaultKind.LINK_DOWN),
            config=SccConfig(mesh_cols=3, mesh_rows=2),
        )
        adaptive = FaultCampaign(fidelity="adaptive", **kw).run()
        assert adaptive.fidelity is not None
        assert adaptive.fidelity["degraded"]
        assert "link_down" in adaptive.fidelity["reason"]
        assert adaptive.fidelity["n_analytic"] == 0
        assert adaptive.fidelity["n_replayed"] == adaptive.n_trials
        exact = FaultCampaign(fidelity="exact", **kw).run()
        self.assert_identical(exact, adaptive)

    def test_all_fault_free_is_fast_path(self):
        res = FaultCampaign(
            trials=64, seed=5, compare_baseline=False,
            fault_rate=0.0, fidelity="adaptive",
        ).run()
        assert res.ft_counts["delivered"] == 64
        assert res.fidelity["n_analytic"] == 64
        assert res.fidelity["n_replayed"] == 0

    def test_default_fault_rate_preserves_plans(self):
        # fault_rate=1.0 must not consume extra RNG draws: the trial
        # plans are bit-identical to a pre-fault-rate campaign's.
        a = FaultCampaign(trials=10, seed=2, compare_baseline=False)
        b = FaultCampaign(trials=10, seed=2, compare_baseline=False,
                          fault_rate=1.0)
        assert a.trial_plans() == b.trial_plans()


class TestBatchedModelFormulas:
    @pytest.mark.parametrize("P", [1, 2, 13, 48])
    def test_ocbcast_batch_matches_scalar(self, P):
        sizes = list(range(0, 300, 13)) + [1, 96, 97, 192]
        for k in (2, 7, 47):
            scalar = np.array([
                model_bcast.ocbcast_latency_complete(P, m, k, TABLE_1)
                for m in sizes
            ])
            batch = model_bcast.ocbcast_latency_complete_batch(
                P, sizes, k, TABLE_1
            )
            assert np.allclose(scalar, batch, rtol=1e-12, atol=1e-9)

    @pytest.mark.parametrize("P", [1, 2, 13, 48])
    def test_binomial_batch_matches_scalar(self, P):
        sizes = list(range(0, 600, 37)) + [1, 251, 252]
        scalar = np.array([
            model_bcast.binomial_latency_complete(P, m, TABLE_1)
            for m in sizes
        ])
        batch = model_bcast.binomial_latency_complete_batch(P, sizes, TABLE_1)
        assert np.allclose(scalar, batch, rtol=1e-12, atol=1e-9)
