"""Tests for iRCCE-style pipelined point-to-point transfers."""

import pytest

from repro.rcce import Comm, IrcceState, pipelined_recv, pipelined_send
from repro.scc import SccChip, SccConfig, run_spmd


def make_world():
    chip = SccChip(SccConfig())
    return chip, Comm(chip)


def pipe_pair(chip, comm, st, nbytes, src_rank=0, dst_rank=1):
    payload = bytes((i * 11 + 5) % 256 for i in range(nbytes))
    got = {}

    def program(core):
        cc = comm.attach(core)
        buf = cc.alloc(nbytes)
        if cc.rank == src_rank:
            buf.write(payload)
            yield from pipelined_send(cc, st, dst_rank, buf, nbytes)
        else:
            yield from pipelined_recv(cc, st, src_rank, buf, nbytes)
            got["data"] = buf.read()

    run_spmd(chip, program, core_ids=[comm.core_of(src_rank), comm.core_of(dst_rank)])
    return payload, got.get("data")


class TestPipelinedTransfer:
    @pytest.mark.parametrize("nbytes", [1, 100, 124 * 32, 124 * 32 + 1, 124 * 32 * 7 + 13])
    def test_data_integrity(self, nbytes):
        chip, comm = make_world()
        st = IrcceState(comm)
        sent, got = pipe_pair(chip, comm, st, nbytes)
        assert got == sent

    def test_zero_bytes_is_noop(self):
        chip, comm = make_world()
        st = IrcceState(comm)
        res_payload, _ = pipe_pair(chip, comm, st, 0)
        assert res_payload == b""

    def test_back_to_back_transfers(self):
        chip, comm = make_world()
        st = IrcceState(comm)
        n = 124 * 32 * 3
        got = []

        def program(core):
            cc = comm.attach(core)
            for rep in range(3):
                buf = cc.alloc(n)
                if cc.rank == 0:
                    buf.write(bytes([rep + 1]) * n)
                    yield from pipelined_send(cc, st, 1, buf, n)
                else:
                    yield from pipelined_recv(cc, st, 0, buf, n)
                    got.append(buf.read()[:1])

        run_spmd(chip, program, core_ids=[0, 1])
        assert got == [bytes([1]), bytes([2]), bytes([3])]

    def test_pipelining_beats_stop_and_wait(self):
        """The 2n-delta -> n-delta claim the paper takes from iRCCE [8]."""
        n = 124 * 32 * 16

        def measure(pipelined: bool) -> float:
            chip, comm = make_world()
            st = IrcceState(comm) if pipelined else None

            def program(core):
                cc = comm.attach(core)
                buf = cc.alloc(n)
                if cc.rank == 0:
                    buf.write(bytes(n))
                    if pipelined:
                        yield from pipelined_send(cc, st, 1, buf, n)
                    else:
                        yield from cc.send(1, buf, n)
                else:
                    if pipelined:
                        yield from pipelined_recv(cc, st, 0, buf, n)
                    else:
                        yield from cc.recv(0, buf, n)

            return run_spmd(chip, program, core_ids=[0, 1]).makespan

        assert measure(True) < 0.75 * measure(False)

    def test_concurrent_pairs(self):
        """Distinct pairs stream simultaneously through their own buffers."""
        chip, comm = make_world()
        st = IrcceState(comm)
        n = 124 * 32 * 2
        got = {}

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(n)
            if cc.rank in (0, 2):
                dst = cc.rank + 1
                buf.write(bytes([cc.rank + 10]) * n)
                yield from pipelined_send(cc, st, dst, buf, n)
            else:
                src = cc.rank - 1
                yield from pipelined_recv(cc, st, src, buf, n)
                got[cc.rank] = buf.read()[:1]

        run_spmd(chip, program, core_ids=[0, 1, 2, 3])
        assert got == {1: bytes([10]), 3: bytes([12])}

    def test_send_to_self_rejected(self):
        chip, comm = make_world()
        st = IrcceState(comm)

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(32)
            yield from pipelined_send(cc, st, 0, buf, 32)

        with pytest.raises(Exception):
            run_spmd(chip, program, core_ids=[0])

    def test_state_validation(self):
        chip, comm = make_world()
        with pytest.raises(ValueError):
            IrcceState(comm, half_lines=0)
