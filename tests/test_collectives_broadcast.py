"""Correctness tests for the RCCE_comm baseline broadcasts."""

import pytest

from repro.collectives import (
    binomial_bcast,
    binomial_children,
    binomial_parent,
    scatter_allgather_bcast,
)
from repro.collectives.scatter_allgather import slice_range
from repro.rcce import Comm
from repro.scc import SccChip, SccConfig, run_spmd
from repro.sim import Tracer


def broadcast_roundtrip(algo, P, nbytes, root=0, cores_per_tile=2, cols=6, rows=4,
                        check=None):
    tracer = Tracer(enabled=True) if check is not None else None
    chip = SccChip(SccConfig(mesh_cols=cols, mesh_rows=rows,
                             cores_per_tile=cores_per_tile), tracer=tracer)
    if check is not None:
        check(chip)
    comm = Comm(chip, ranks=list(range(P)))
    payload = bytes((i * 13 + root) % 256 for i in range(nbytes))
    results = {}

    def program(core):
        cc = comm.attach(core)
        buf = cc.alloc(nbytes)
        if cc.rank == root:
            buf.write(payload)
        yield from algo(cc, root, buf, nbytes)
        results[cc.rank] = buf.read()

    run_spmd(chip, program, core_ids=list(range(P)))
    return payload, results


class TestBinomialTreeStructure:
    def test_root_has_no_parent(self):
        assert binomial_parent(0, 0, 8) is None
        assert binomial_parent(3, 3, 8) is None

    def test_parent_child_consistency(self):
        for size in (1, 2, 3, 7, 8, 16, 48):
            for root in (0, size // 2, size - 1):
                for rank in range(size):
                    for child in binomial_children(rank, root, size):
                        assert binomial_parent(child, root, size) == rank

    def test_tree_spans_all_ranks(self):
        for size in (1, 5, 8, 48):
            root = 2 % size
            seen = {root}
            frontier = [root]
            while frontier:
                node = frontier.pop()
                for child in binomial_children(node, root, size):
                    assert child not in seen, "duplicate delivery"
                    seen.add(child)
                    frontier.append(child)
            assert seen == set(range(size))

    def test_depth_is_max_popcount(self):
        # The deepest rank is the one with the most set bits below P:
        # rel 47 = 0b101111 -> 5 hops from the root (log2-bounded).
        size = 48
        def depth(rank):
            d = 0
            r = rank
            while (p := binomial_parent(r, 0, size)) is not None:
                r = p
                d += 1
            return d
        assert max(depth(r) for r in range(size)) == 5
        assert depth(47) == bin(47).count("1")


class TestBinomialBroadcast:
    @pytest.mark.parametrize("P", [2, 3, 7, 8, 16])
    def test_various_sizes(self, P, check_invariants):
        sent, got = broadcast_roundtrip(binomial_bcast, P, 100,
                                        check=check_invariants)
        assert all(got[r] == sent for r in range(P))

    @pytest.mark.parametrize("root", [0, 3, 7])
    def test_nonzero_roots(self, root):
        sent, got = broadcast_roundtrip(binomial_bcast, 8, 256, root=root)
        assert all(got[r] == sent for r in range(8))

    def test_full_chip(self, check_invariants):
        sent, got = broadcast_roundtrip(binomial_bcast, 48, 500,
                                        check=check_invariants)
        assert all(got[r] == sent for r in range(48))

    def test_message_larger_than_payload_buffer(self):
        sent, got = broadcast_roundtrip(binomial_bcast, 4, 251 * 32 * 2 + 40)
        assert all(got[r] == sent for r in range(4))

    def test_single_rank_is_noop(self):
        sent, got = broadcast_roundtrip(binomial_bcast, 1, 64)
        assert got[0] == sent

    def test_invalid_root_rejected(self):
        with pytest.raises(Exception):
            broadcast_roundtrip(binomial_bcast, 4, 64, root=4)


class TestSliceRange:
    def test_slices_partition_message(self):
        for nbytes in (0, 1, 31, 32, 100, 1536, 12345):
            for size in (1, 2, 3, 48):
                spans = [slice_range(nbytes, size, i) for i in range(size)]
                # Contiguous, non-overlapping, complete.
                pos = 0
                for off, ln in spans:
                    assert off == pos
                    pos += ln
                assert pos == nbytes

    def test_trailing_slices_may_be_empty(self):
        spans = [slice_range(10, 4, i) for i in range(4)]
        assert spans == [(0, 3), (3, 3), (6, 3), (9, 1)]


class TestScatterAllgatherBroadcast:
    @pytest.mark.parametrize("P", [2, 3, 4, 5, 8, 16])
    def test_various_sizes(self, P, check_invariants):
        sent, got = broadcast_roundtrip(scatter_allgather_bcast, P, 777,
                                        check=check_invariants)
        assert all(got[r] == sent for r in range(P))

    @pytest.mark.parametrize("root", [0, 2, 7])
    def test_nonzero_roots(self, root):
        sent, got = broadcast_roundtrip(scatter_allgather_bcast, 8, 320, root=root)
        assert all(got[r] == sent for r in range(8))

    def test_full_chip_large_message(self, check_invariants):
        sent, got = broadcast_roundtrip(scatter_allgather_bcast, 48, 48 * 96 * 32,
                                        check=check_invariants)
        assert all(got[r] == sent for r in range(48))

    def test_message_smaller_than_rank_count(self):
        sent, got = broadcast_roundtrip(scatter_allgather_bcast, 16, 5)
        assert all(got[r] == sent for r in range(16))

    def test_single_byte(self):
        sent, got = broadcast_roundtrip(scatter_allgather_bcast, 8, 1)
        assert all(got[r] == sent for r in range(8))


class TestCrossAlgorithmAgreement:
    def test_all_broadcasts_deliver_identical_results(self):
        for algo in (binomial_bcast, scatter_allgather_bcast):
            sent, got = broadcast_roundtrip(algo, 12, 1000, root=5)
            assert all(got[r] == sent for r in range(12)), algo.__name__
