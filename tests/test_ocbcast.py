"""Tests for OC-Bcast: correctness, protocol ordering, configurations."""

import pytest

from repro.core import NotifyMode, OcBcast, OcBcastConfig, topology_aware_order
from repro.obs import InvariantChecker
from repro.rcce import Comm
from repro.scc import ContentionMode, SccChip, SccConfig, run_spmd
from repro.sim import Tracer


def make_world(P=48, tracer=None, **cfg):
    chip = SccChip(SccConfig(**cfg), tracer=tracer)
    comm = Comm(chip, ranks=list(range(P)))
    return chip, comm


def oc_roundtrip(P, nbytes, root=0, oc_config=None, order=None, repeats=1, **cfg):
    # Every roundtrip runs under the online invariant checker: protocol
    # regressions (lost writes, notify/fetch reordering, premature buffer
    # reuse) fail here even when the payload still arrives intact.
    chip, comm = make_world(P, tracer=Tracer(enabled=True), **cfg)
    checker = InvariantChecker(lossless=True).attach(chip)
    oc = OcBcast(comm, oc_config)
    payloads = [
        bytes((i * 31 + rep) % 256 for i in range(nbytes)) for rep in range(repeats)
    ]
    results = {rep: {} for rep in range(repeats)}

    def program(core):
        cc = comm.attach(core)
        for rep in range(repeats):
            buf = cc.alloc(nbytes)
            if cc.rank == root:
                buf.write(payloads[rep])
            yield from oc.bcast(cc, root, buf, nbytes, order=order)
            results[rep][cc.rank] = buf.read()

    run_spmd(chip, program, core_ids=list(range(P)))
    checker.check()
    return payloads, results


class TestCorrectness:
    @pytest.mark.parametrize("P", [2, 3, 7, 8, 9, 12, 48])
    def test_various_rank_counts(self, P):
        sent, got = oc_roundtrip(P, 200)
        assert all(got[0][r] == sent[0] for r in range(P))

    @pytest.mark.parametrize("k", [1, 2, 3, 7, 24, 47])
    def test_various_k(self, k):
        sent, got = oc_roundtrip(48, 500, oc_config=OcBcastConfig(k=k))
        assert all(got[0][r] == sent[0] for r in range(48))

    @pytest.mark.parametrize("root", [0, 1, 25, 47])
    def test_various_roots(self, root):
        sent, got = oc_roundtrip(48, 300, root=root)
        assert all(got[0][r] == sent[0] for r in range(48))

    @pytest.mark.parametrize(
        "nbytes",
        [1, 31, 32, 33, 96 * 32, 96 * 32 + 1, 97 * 32, 2 * 96 * 32, 5 * 96 * 32 + 7],
    )
    def test_chunk_boundaries(self, nbytes):
        sent, got = oc_roundtrip(12, nbytes)
        assert all(got[0][r] == sent[0] for r in range(12))

    def test_zero_bytes_is_noop(self):
        sent, got = oc_roundtrip(8, 200)  # warm engine path exercised above
        chip, comm = make_world(8)
        oc = OcBcast(comm)

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(0)
            yield from oc.bcast(cc, 0, buf, 0)

        res = run_spmd(chip, program, core_ids=list(range(8)))
        assert res.makespan == 0.0

    def test_single_rank(self):
        chip, comm = make_world(1)
        oc = OcBcast(comm)

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(64)
            buf.write(b"y" * 64)
            yield from oc.bcast(cc, 0, buf, 64)
            return buf.read()

        res = run_spmd(chip, program, core_ids=[0])
        assert res.values[0] == b"y" * 64

    def test_repeated_broadcasts_same_engine(self):
        sent, got = oc_roundtrip(12, 96 * 32 * 2, repeats=4)
        for rep in range(4):
            assert all(got[rep][r] == sent[rep] for r in range(12))

    def test_repeated_broadcasts_changing_roots(self):
        """Flag sequence numbers must survive tree changes (different root
        => different parents/children writing the same flag lines)."""
        chip, comm = make_world(12)
        oc = OcBcast(comm)
        results = []

        def program(core):
            cc = comm.attach(core)
            for root in (0, 5, 11, 3):
                buf = cc.alloc(400)
                if cc.rank == root:
                    buf.write(bytes([root]) * 400)
                yield from oc.bcast(cc, root, buf, 400)
                if cc.rank == (root + 1) % 12:
                    results.append(buf.read())

        run_spmd(chip, program, core_ids=list(range(12)))
        assert results == [bytes([r]) * 400 for r in (0, 5, 11, 3)]

    @pytest.mark.parametrize(
        "mode", [ContentionMode.IDEAL, ContentionMode.BATCH, ContentionMode.EXACT]
    )
    def test_all_contention_modes(self, mode):
        sent, got = oc_roundtrip(12, 97 * 32, contention_mode=mode)
        assert all(got[0][r] == sent[0] for r in range(12))


class TestConfigurations:
    def test_single_buffering(self):
        cfg = OcBcastConfig(num_buffers=1)
        sent, got = oc_roundtrip(12, 96 * 32 * 3, oc_config=cfg)
        assert all(got[0][r] == sent[0] for r in range(12))

    def test_triple_buffering(self):
        cfg = OcBcastConfig(num_buffers=3, chunk_lines=64)
        sent, got = oc_roundtrip(12, 64 * 32 * 5 + 9, oc_config=cfg)
        assert all(got[0][r] == sent[0] for r in range(12))

    def test_leaf_direct_to_memory(self):
        cfg = OcBcastConfig(leaf_direct_to_memory=True)
        sent, got = oc_roundtrip(48, 96 * 32 * 2 + 5, oc_config=cfg)
        assert all(got[0][r] == sent[0] for r in range(48))

    def test_interrupt_notification(self):
        cfg = OcBcastConfig(notify_mode=NotifyMode.INTERRUPT)
        sent, got = oc_roundtrip(48, 300, oc_config=cfg)
        assert all(got[0][r] == sent[0] for r in range(48))

    @pytest.mark.parametrize("degree", [1, 2, 3, 7])
    def test_notification_degrees(self, degree):
        cfg = OcBcastConfig(k=7, notify_degree=degree)
        sent, got = oc_roundtrip(48, 200, oc_config=cfg)
        assert all(got[0][r] == sent[0] for r in range(48))

    def test_topology_aware_order(self):
        chip, comm = make_world(48)
        order = topology_aware_order(48, 7, 0, chip.mesh.core_distance)
        sent, got = oc_roundtrip(48, 400, order=order)
        assert all(got[0][r] == sent[0] for r in range(48))

    def test_double_buffering_improves_throughput(self):
        """The paper's 2n-delta vs n-delta argument (Section 4.2).  The
        effect is clearest where root staging sits on the critical path
        (a flat tree with the leaf-direct optimisation); in the default
        deep-tree config the child's serial MPB-to-memory copy hides the
        staging, as Formula 15's buffer-independence predicts."""
        def latency(nbuf):
            chip, comm = make_world(48)
            oc = OcBcast(
                comm,
                OcBcastConfig(num_buffers=nbuf, k=47, leaf_direct_to_memory=True),
            )
            nbytes = 96 * 32 * 12

            def program(core):
                cc = comm.attach(core)
                buf = cc.alloc(nbytes)
                if cc.rank == 0:
                    buf.write(bytes(nbytes))
                yield from oc.bcast(cc, 0, buf, nbytes)

            return run_spmd(chip, program, core_ids=list(range(48))).makespan

        single, double = latency(1), latency(2)
        assert double < single * 0.8

    def test_mpb_exhaustion_rejected(self):
        chip, comm = make_world(8)
        # 2 x 125 lines + 8 flag lines = 258 > 256.
        with pytest.raises(MemoryError):
            OcBcast(comm, OcBcastConfig(k=7, chunk_lines=125, num_buffers=2))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OcBcastConfig(k=0)
        with pytest.raises(ValueError):
            OcBcastConfig(chunk_lines=0)
        with pytest.raises(ValueError):
            OcBcastConfig(num_buffers=0)
        with pytest.raises(ValueError):
            OcBcastConfig(notify_degree=0)
        with pytest.raises(ValueError):
            OcBcastConfig(irq_handler=-1.0)

    def test_bcast_argument_validation(self):
        chip, comm = make_world(8)
        oc = OcBcast(comm)

        def bad_root(core):
            cc = comm.attach(core)
            buf = cc.alloc(32)
            yield from oc.bcast(cc, 8, buf, 32)

        with pytest.raises(Exception):
            run_spmd(chip, bad_root, core_ids=[0])

        def small_buf(core):
            cc = comm.attach(core)
            buf = cc.alloc(16)
            yield from oc.bcast(cc, 0, buf, 32)

        with pytest.raises(Exception):
            run_spmd(chip, small_buf, core_ids=[0])


class TestProtocolOrdering:
    def _traced_run(self, P=12, nbytes=96 * 32 * 2, k=3):
        tracer = Tracer(enabled=True)
        chip = SccChip(SccConfig(), tracer=tracer)
        comm = Comm(chip, ranks=list(range(P)))
        oc = OcBcast(comm, OcBcastConfig(k=k))

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            if cc.rank == 0:
                buf.write(bytes(nbytes))
            yield from oc.bcast(cc, 0, buf, nbytes)

        run_spmd(chip, program, core_ids=list(range(P)))
        return tracer

    def test_chunks_staged_in_order(self):
        tracer = self._traced_run()
        staged = [r.detail["idx"] for r in tracer.of_kind("oc.chunk_staged")]
        assert staged == sorted(staged)

    def test_no_node_finishes_chunk_before_root_stages_it(self):
        tracer = self._traced_run()
        staged = {r.detail["idx"]: r.time for r in tracer.of_kind("oc.chunk_staged")}
        for rec in tracer.of_kind("oc.chunk_done"):
            assert rec.time > staged[rec.detail["idx"]]

    def test_every_rank_completes_every_chunk(self):
        P, nchunks = 12, 2
        tracer = self._traced_run(P=P)
        done = tracer.of_kind("oc.chunk_done")
        per_rank = {}
        for rec in done:
            per_rank.setdefault(rec.source, []).append(rec.detail["idx"])
        assert len(per_rank) == P - 1  # all non-roots
        for idxs in per_rank.values():
            assert idxs == list(range(nchunks))

    def test_pipelining_overlaps_chunks(self):
        """With double buffering the root stages chunk 1 before the last
        node finishes chunk 0."""
        tracer = self._traced_run(P=48, nbytes=96 * 32 * 4, k=7)
        staged = {r.detail["idx"]: r.time for r in tracer.of_kind("oc.chunk_staged")}
        done0 = max(
            r.time for r in tracer.of_kind("oc.chunk_done") if r.detail["idx"] == 0
        )
        assert staged[1] < done0


class TestLatencyShape:
    """Relations the paper reports (Figures 6 and 8)."""

    def _latency(self, k, ncl, P=48):
        chip, comm = make_world(P)
        oc = OcBcast(comm, OcBcastConfig(k=k))
        nbytes = ncl * 32

        def program(core):
            cc = comm.attach(core)
            buf = cc.alloc(nbytes)
            if cc.rank == 0:
                buf.write(bytes(nbytes))
            yield from oc.bcast(cc, 0, buf, nbytes)

        return run_spmd(chip, program, core_ids=list(range(P))).makespan

    def test_k7_beats_k2_for_medium_messages(self):
        assert self._latency(7, 96) < self._latency(2, 96)

    def test_k47_slowest_for_tiny_messages(self):
        """Large k pays polling costs on 1-line messages (Figure 6b)."""
        l47 = self._latency(47, 1)
        assert l47 > self._latency(7, 1)

    def test_latency_monotone_in_message_size(self):
        lats = [self._latency(7, ncl) for ncl in (1, 32, 96, 192)]
        assert lats == sorted(lats)

    def test_leaf_direct_helps_leaves(self):
        def lat(leaf_direct):
            chip, comm = make_world(48)
            oc = OcBcast(
                comm, OcBcastConfig(k=7, leaf_direct_to_memory=leaf_direct)
            )

            def program(core):
                cc = comm.attach(core)
                buf = cc.alloc(96 * 32)
                if cc.rank == 0:
                    buf.write(bytes(96 * 32))
                yield from oc.bcast(cc, 0, buf, 96 * 32)

            return run_spmd(chip, program, core_ids=list(range(48))).makespan

        assert lat(True) < lat(False)
