PYTHON ?= python
export PYTHONPATH := src

.PHONY: test faults churn chaos bench perf perf-check cov trace lint

## Tier-1: the fast default test suite (fault campaigns and perf guards
## deselected -- see the marker list in pyproject.toml).
test:
	$(PYTHON) -m pytest -x -q

## Fault-injection smoke: the marked campaign tests, a 50-trial CLI
## campaign comparing FT OC-Bcast against the baseline, a 10-trial
## multi-fault service campaign (interior crash mid-stream + corrupted
## data + link-down bursts) over the crash-surviving broadcast service,
## a 15-trial coordinator-failover campaign (the root/source itself
## crashes mid-stream -- survived only by leader election + the
## message-completion protocol), and a 20-trial Byzantine campaign
## (3 compromised cores per trial equivocating/forging/lying against
## the Bracha echo/ready RBC -- honest members must never diverge).
faults:
	$(PYTHON) -m pytest -q -m faults tests
	$(PYTHON) -m repro faults --trials 50 --kinds drop_flag corrupt_flag crash --timeline
	$(PYTHON) -m repro faults --trials 10 --service --burst \
		--kinds crash corrupt_data --crash-site interior --mid-stream \
		--cache-lines 288 --faults-per-trial 2 --timeline
	$(PYTHON) -m repro faults --trials 15 --service --no-baseline \
		--kinds crash --crash-site root --mid-stream \
		--cache-lines 288 --timeline
	$(PYTHON) -m repro faults --trials 20 --byz --adversaries 3 \
		--no-baseline --cache-lines 192 --timeline

## Sustained-regime survival (docs/FAULTS.md §10): the marked churn
## acceptance test, then the full 100-trial campaign -- every adaptive
## trial must terminate cleanly with zero false evictions and zero
## online I8 (no-false-eviction) violations, while the fixed-deadline
## comparison leg demonstrates the failure the phi-accrual detector
## and paced retries exist to prevent.
churn:
	$(PYTHON) -m pytest -q -m faults tests/test_churn.py
	$(PYTHON) -m repro churn --trials 100 --seed 1

## Chaos search (docs/FAULTS.md §9): replay the pinned regression
## bundles, then soak 200 randomized composite-fault schedules across
## both transport backends -- every violation is ddmin-shrunk and
## written to chaos_bundles/ with a one-line repro command.  The
## nightly CI job runs the same loop with a wall-clock budget.
chaos:
	$(PYTHON) -m pytest -q -m chaos tests
	$(PYTHON) -m repro chaos --replay tests/chaos_bundles/*.json
	$(PYTHON) -m repro chaos --trials 200 --seed 1 --out-dir chaos_bundles

## Paper tables/figures (slow; writes benchmarks/results/).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

## Engine performance: measure events/sec, broadcasts/sec, trials/sec and
## record them in benchmarks/BENCH_simulator.json (docs/PERFORMANCE.md).
perf:
	$(PYTHON) benchmarks/perf_report.py --label current

## Compare a fresh (quick) measurement against the committed baseline.
perf-check:
	$(PYTHON) benchmarks/perf_check.py

## Function-coverage gate (stdlib-only; takes several minutes -- the
## profiler hooks every call).  Uses coverage.py instead when installed.
cov:
	$(PYTHON) tools/funccov.py --prefer-coverage-py --fail-under 90

## Export a Chrome/Perfetto trace of the paper's headline broadcast
## (OC-Bcast k=7, 96 cache lines, 48 cores) to trace.json.
trace:
	$(PYTHON) -m repro trace --algo oc --k 7 --cache-lines 96 -o trace.json

lint:
	$(PYTHON) -m compileall -q src tests benchmarks
